// Truth-table algebra, P-equivalence and candidate-family tests.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "logic/families.h"
#include "logic/truth_table.h"

namespace sbm::logic {
namespace {

using TT = TruthTable6;

TT a(unsigned i) { return TT::var(i - 1); }

TEST(TruthTable, VarProjections) {
  for (unsigned v = 0; v < 6; ++v) {
    for (unsigned i = 0; i < 64; ++i) {
      EXPECT_EQ(TT::var(v).eval(i), bit_of(i, v));
    }
  }
}

TEST(TruthTable, OperatorsMatchBitwiseSemantics) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const TT f(rng.next_u64()), g(rng.next_u64());
    for (unsigned i = 0; i < 64; ++i) {
      EXPECT_EQ((f & g).eval(i), f.eval(i) & g.eval(i));
      EXPECT_EQ((f | g).eval(i), f.eval(i) | g.eval(i));
      EXPECT_EQ((f ^ g).eval(i), f.eval(i) ^ g.eval(i));
      EXPECT_EQ((~f).eval(i), f.eval(i) ^ 1u);
    }
  }
}

TEST(TruthTable, PermutedEvaluatesReorderedInputs) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const TT f(rng.next_u64());
    for (const auto& perm : {InputPermutation{1, 0, 2, 3, 4, 5},
                             InputPermutation{5, 4, 3, 2, 1, 0},
                             InputPermutation{2, 0, 1, 5, 3, 4}}) {
      const TT g = f.permuted(perm);
      for (unsigned i = 0; i < 64; ++i) {
        unsigned j = 0;
        for (unsigned k = 0; k < 6; ++k) j |= bit_of(i, perm[k]) << k;
        EXPECT_EQ(g.eval(i), f.eval(j));
      }
    }
  }
}

TEST(TruthTable, PermutationComposition) {
  Rng rng(3);
  const TT f(rng.next_u64());
  const InputPermutation p = {2, 0, 1, 4, 5, 3};
  const InputPermutation q = {1, 2, 0, 5, 3, 4};
  // Applying p then q equals applying the composed permutation r[k] = p[q[k]].
  InputPermutation r{};
  for (unsigned k = 0; k < 6; ++k) r[k] = p[q[k]];
  EXPECT_EQ(f.permuted(p).permuted(q), f.permuted(r));
}

TEST(TruthTable, IdentityPermutationIsNoop) {
  Rng rng(4);
  const InputPermutation id = {0, 1, 2, 3, 4, 5};
  for (int trial = 0; trial < 20; ++trial) {
    const TT f(rng.next_u64());
    EXPECT_EQ(f.permuted(id), f);
  }
}

TEST(TruthTable, ShannonExpansion) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const TT f(rng.next_u64());
    for (unsigned v = 0; v < 6; ++v) {
      const TT expanded =
          (TT::var(v) & f.cofactor(v, 1)) | (~TT::var(v) & f.cofactor(v, 0));
      EXPECT_EQ(expanded, f);
      EXPECT_FALSE(f.cofactor(v, 0).depends_on(v));
      EXPECT_FALSE(f.cofactor(v, 1).depends_on(v));
    }
  }
}

TEST(TruthTable, SupportOfKnownFunctions) {
  EXPECT_EQ((a(1) ^ a(2)).support_size(), 2u);
  EXPECT_EQ((a(1) & a(2) & a(6)).support_size(), 3u);
  EXPECT_EQ(TT::zero().support_size(), 0u);
  EXPECT_EQ(TT::one().support_size(), 0u);
  EXPECT_TRUE((a(3)).depends_on(2));
  EXPECT_FALSE((a(3)).depends_on(0));
}

TEST(TruthTable, PClassOfXor2) {
  // a1^a2 has C(6,2) = 15 distinct tables in its P class.
  EXPECT_EQ(p_class(a(1) ^ a(2)).size(), 15u);
}

TEST(TruthTable, PClassOfXor6IsSingleton) {
  const TT x6 = a(1) ^ a(2) ^ a(3) ^ a(4) ^ a(5) ^ a(6);
  EXPECT_EQ(p_class(x6).size(), 1u);
}

TEST(TruthTable, PEquivalenceIsSymmetricOnPermutedPairs) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const TT f(rng.next_u64());
    const TT g = f.permuted({3, 1, 4, 0, 5, 2});
    EXPECT_TRUE(p_equivalent(f, g));
    EXPECT_TRUE(p_equivalent(g, f));
    EXPECT_EQ(p_canonical(f), p_canonical(g));
  }
}

TEST(TruthTable, PInequivalentFunctions) {
  EXPECT_FALSE(p_equivalent(a(1) & a(2), a(1) | a(2)));
  EXPECT_FALSE(p_equivalent(a(1) ^ a(2), a(1) ^ a(2) ^ a(3)));
}

TEST(TruthTable, HalfIsXor2) {
  const TT x = a(1) ^ a(4);
  EXPECT_TRUE(half_is_xor2(x.half(0)));
  EXPECT_TRUE(half_is_xor2(x.half(1)));
  EXPECT_FALSE(half_is_xor2((a(1) & a(2)).half(0)));
  EXPECT_FALSE(half_is_xor2((~(a(1) ^ a(2))).half(0)));
  EXPECT_TRUE(half_is_xor2((~(a(1) ^ a(2))).half(0), /*allow_complement=*/true));
}

TEST(TruthTable, ToStringIsMsbFirstHex) {
  EXPECT_EQ(TT::zero().to_string(), "0000000000000000");
  EXPECT_EQ(TT(0x00000000000000ffull).to_string(), "00000000000000ff");
}

// --- candidate families ----------------------------------------------------

TEST(Families, Table2HasTwentyOneCandidates) {
  EXPECT_EQ(table2_family().size(), 21u);
  EXPECT_EQ(table2_candidate("f2").formula, "(a1^a2^a3) a4 a5 ~a6");
  EXPECT_THROW(table2_candidate("f99"), std::out_of_range);
}

TEST(Families, Table2FunctionsMatchFormulas) {
  // Spot-check the exact truth tables against independently built formulas.
  EXPECT_EQ(table2_candidate("f2").function, (a(1) ^ a(2) ^ a(3)) & a(4) & a(5) & ~a(6));
  EXPECT_EQ(table2_candidate("f8").function,
            ((a(1) ^ a(2)) & ~a(3) & a(4) & a(5)) ^ a(6));
  EXPECT_EQ(table2_candidate("f19").function, ((a(1) ^ a(2)) & ~a(4)) ^ (a(3) & a(6)));
}

TEST(Families, Table2PathsSplitAtF8) {
  const auto& fam = table2_family();
  for (size_t i = 0; i < fam.size(); ++i) {
    EXPECT_EQ(fam[i].path, i < 7 ? TargetPath::kKeystream : TargetPath::kFeedback) << i;
  }
}

TEST(Families, Equation1Rewrites) {
  // Eq. (1) of the paper: f8 -> a6 and f19 -> a3 a6 under v = 0.
  EXPECT_EQ(table2_candidate("f8").stuck_at0_rewrite(), f8_alpha());
  EXPECT_EQ(f8_alpha(), a(6));
  EXPECT_EQ(table2_candidate("f19").stuck_at0_rewrite(), f19_alpha());
  EXPECT_EQ(f19_alpha(), a(3) & a(6));
}

TEST(Families, F2Alpha2KeepsTheThirdInput) {
  EXPECT_EQ(f2_alpha2(1, 2), a(3) & a(4) & a(5) & ~a(6));
  EXPECT_EQ(f2_alpha2(2, 3), a(1) & a(4) & a(5) & ~a(6));
  EXPECT_EQ(f2_alpha2(1, 3), a(2) & a(4) & a(5) & ~a(6));
  EXPECT_THROW(f2_alpha2(1, 1), std::invalid_argument);
  EXPECT_THROW(f2_alpha2(0, 2), std::invalid_argument);
}

TEST(Families, MuxRewriteMatchesPaper) {
  // f_MUX2 -> f_MUX2^alpha = a6 ~a1 a3 + ~a6 ~a1 a5 (Section VI-D.2).
  const Candidate& mux2 = mux_family()[0];
  EXPECT_EQ(mux2.function, f_mux2());
  EXPECT_EQ(mux2.load_zero_rewrite(true), f_mux2_zeroed());
  EXPECT_EQ(f_mux2_zeroed(), (a(6) & ~a(1) & a(3)) | (~a(6) & ~a(1) & a(5)));
}

TEST(Families, MuxRewritePolarity) {
  const Candidate& mux1 = mux_family()[1];
  EXPECT_EQ(mux1.load_zero_rewrite(true), ~a(1) & a(3));
  EXPECT_EQ(mux1.load_zero_rewrite(false), a(1) & a(2));
}

TEST(Families, GatedXorFamilyPolarityCount) {
  // c+1 polarity choices instead of 2^c (Section VI-B).
  for (unsigned c = 0; c <= 3; ++c) {
    EXPECT_EQ(gated_xor_family(3, c, 0, TargetPath::kKeystream).size(), c + 1);
  }
}

TEST(Families, GatedXorFamilySemantics) {
  const auto fam = gated_xor_family(2, 1, 1, TargetPath::kFeedback);
  ASSERT_EQ(fam.size(), 2u);
  EXPECT_EQ(fam[0].function, ((a(1) ^ a(2)) & a(3)) ^ a(4));
  EXPECT_EQ(fam[1].function, ((a(1) ^ a(2)) & ~a(3)) ^ a(4));
  EXPECT_EQ(fam[0].xor_vars, (std::vector<u8>{0, 1}));
}

TEST(Families, GatedXorFamilyRejectsOverflow) {
  EXPECT_THROW(gated_xor_family(4, 3, 0, TargetPath::kFeedback), std::invalid_argument);
  EXPECT_THROW(gated_xor_family(5, 0, 0, TargetPath::kFeedback), std::invalid_argument);
  EXPECT_THROW(gated_xor_family(1, 0, 0, TargetPath::kFeedback), std::invalid_argument);
}

TEST(Families, GatedXorStuckAt0RemovesTheXorGroup) {
  for (const auto& c : gated_xor_family(3, 2, 1, TargetPath::kFeedback)) {
    const TT rewrite = c.stuck_at0_rewrite();
    // The rewrite must not depend on any XOR-group variable.
    for (const u8 v : c.xor_vars) EXPECT_FALSE(rewrite.depends_on(v));
    // And it must agree with the original wherever the group is all-0.
    TT masked = c.function;
    for (const u8 v : c.xor_vars) masked = masked.cofactor(v, 0);
    EXPECT_EQ(rewrite, masked);
  }
}

TEST(Families, MuxFoldFamilyShapes) {
  const auto folds = mux_fold_family();
  EXPECT_GE(folds.size(), 7u);
  std::set<u64> tables;
  for (const auto& c : folds) {
    EXPECT_EQ(c.sel_var, 0);
    // At sel = 1 the output is the data input a2.
    EXPECT_EQ(c.function.cofactor(0, 1), a(2));
    tables.insert(c.function.bits());
  }
  EXPECT_EQ(tables.size(), folds.size()) << "fold tables must be distinct";
}

TEST(Families, Mux3HalfIsSelD1D0) {
  const u32 half = mux3_half();
  // Evaluate: index bit0 = sel, bit1 = d1, bit2 = d0.
  for (unsigned i = 0; i < 32; ++i) {
    const u32 sel = bit_of(i, 0), d1 = bit_of(i, 1), d0 = bit_of(i, 2);
    EXPECT_EQ(bit_of(half, i), sel ? d1 : d0);
  }
}

}  // namespace
}  // namespace sbm::logic
