// SNOW 3G reference-model tests: spec components, the paper's exact
// keystream tables (III/IV/V), LFSR reversal and key extraction, and the
// UEA2/UIA2 wrappers.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/hex.h"
#include "common/rng.h"
#include "snow3g/f8f9.h"
#include "snow3g/gf.h"
#include "snow3g/reverse.h"
#include "snow3g/sbox.h"
#include "snow3g/snow3g.h"

namespace sbm::snow3g {
namespace {

// The test-vector secrets recovered in the paper's Table V.
constexpr Key kPaperKey = {0x2bd6459f, 0x82c5b300, 0x952c4910, 0x4881ff48};
constexpr Iv kPaperIv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};

TEST(Gf, MulxMatchesSpecDefinition) {
  EXPECT_EQ(mulx(0x01, 0xA9), 0x02);
  EXPECT_EQ(mulx(0x80, 0xA9), 0xA9);
  EXPECT_EQ(mulx(0xFF, 0xA9), static_cast<u8>((0xFF << 1) ^ 0xA9));
}

TEST(Gf, MulxPowIsIteratedMulx) {
  u8 v = 0x57;
  for (int i = 0; i <= 16; ++i) {
    EXPECT_EQ(mulx_pow(0x57, i, 0xA9), v);
    v = mulx(v, 0xA9);
  }
}

TEST(Gf, AlphaTablesAreGf2Linear) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const u8 a = static_cast<u8>(rng.next_u64());
    const u8 b = static_cast<u8>(rng.next_u64());
    EXPECT_EQ(mul_alpha(a) ^ mul_alpha(b), mul_alpha(a ^ b));
    EXPECT_EQ(div_alpha(a) ^ div_alpha(b), div_alpha(a ^ b));
  }
}

TEST(Gf, AlphaDivInvertsAlphaTimes) {
  Rng rng(2);
  for (int trial = 0; trial < 1000; ++trial) {
    const u32 w = rng.next_u32();
    EXPECT_EQ(alpha_div(alpha_times(w)), w);
    EXPECT_EQ(alpha_times(alpha_div(w)), w);
  }
}

TEST(Gf, LinearMapColumnsReconstructTable) {
  const auto cols = linear_map_columns(&mul_alpha);
  Rng rng(3);
  for (int trial = 0; trial < 256; ++trial) {
    const u8 c = static_cast<u8>(trial);
    u32 expect = 0;
    for (unsigned j = 0; j < 8; ++j) {
      if (bit_of(c, j)) expect ^= cols[j];
    }
    EXPECT_EQ(expect, mul_alpha(c));
  }
}

TEST(Sbox, SrIsRijndael) {
  const auto& sr = table_sr();
  EXPECT_EQ(sr[0x00], 0x63);
  EXPECT_EQ(sr[0x01], 0x7c);
  EXPECT_EQ(sr[0xc9], 0xdd);
}

TEST(Sbox, SqMatchesSpecPrefix) {
  // First 16 entries of the SQ table from the SNOW 3G specification; our
  // table is derived from the Dickson polynomial D49 = D7 o D7.
  const std::array<u8, 16> expect = {0x25, 0x24, 0x73, 0x67, 0xD7, 0xAE, 0x5C, 0x30,
                                     0xA4, 0xEE, 0x6E, 0xCB, 0x7D, 0xB5, 0x82, 0xDB};
  const auto& sq = table_sq();
  for (size_t i = 0; i < expect.size(); ++i) EXPECT_EQ(sq[i], expect[i]) << i;
}

TEST(Sbox, SqIsAPermutation) {
  std::array<bool, 256> seen{};
  for (u8 v : table_sq()) seen[v] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Sbox, S1S2WordValues) {
  // circ(2,1,1,3) over equal bytes collapses to the byte itself.
  EXPECT_EQ(s1(0x00000000u), 0x63636363u);
  EXPECT_EQ(s2(0x00000000u), 0x25252525u);
}

TEST(Gamma, MatchesSectionIIIDefinition) {
  const LfsrState s = gamma(kPaperKey, kPaperIv);
  EXPECT_EQ(s[4], kPaperKey[0]);
  EXPECT_EQ(s[5], kPaperKey[1]);
  EXPECT_EQ(s[6], kPaperKey[2]);
  EXPECT_EQ(s[7], kPaperKey[3]);
  EXPECT_EQ(s[0], ~kPaperKey[0]);
  EXPECT_EQ(s[8], ~kPaperKey[0]);
  EXPECT_EQ(s[15], kPaperKey[3] ^ kPaperIv[0]);
  EXPECT_EQ(s[12], kPaperKey[0] ^ kPaperIv[1]);
  EXPECT_EQ(s[10], kPaperKey[2] ^ 0xffffffffu ^ kPaperIv[2]);
  EXPECT_EQ(s[9], kPaperKey[1] ^ 0xffffffffu ^ kPaperIv[3]);
}

TEST(Keystream, KnownTestVector) {
  // First keystream words for the standard test-vector key/IV.
  Snow3g cipher(kPaperKey, kPaperIv);
  EXPECT_EQ(hex32(cipher.next()), "abee9704");
  EXPECT_EQ(hex32(cipher.next()), "7ac31373");
}

// Table-driven golden keystream vectors.
//
// The "3gpp" rows are from the UEA2/UIA2 design-conformance test data
// (implementers' test sets for the SNOW 3G keystream generator); the long
// set pins the first two words and word 2500, which the document lists
// explicitly.  The "pin" rows are reference-model regression vectors: their
// expected words were produced by this implementation (after it passed the
// 3GPP sets) and exist to catch unintended keystream changes on randomized
// keys, not to certify conformance.
struct GoldenVector {
  const char* name;
  Key key;
  Iv iv;
  std::vector<std::pair<size_t, u32>> expect;  // (1-based word index, z_index)
};

class KeystreamGolden : public ::testing::TestWithParam<GoldenVector> {};

TEST_P(KeystreamGolden, MatchesExpectedWords) {
  const GoldenVector& v = GetParam();
  size_t last = 0;
  for (const auto& [index, value] : v.expect) last = std::max(last, index);
  Snow3g cipher(v.key, v.iv);
  const std::vector<u32> z = cipher.keystream(last);
  for (const auto& [index, value] : v.expect) {
    EXPECT_EQ(hex32(z[index - 1]), hex32(value)) << v.name << " z" << index;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Vectors, KeystreamGolden,
    ::testing::Values(
        GoldenVector{"3gpp_set1",
                     {0x2bd6459f, 0x82c5b300, 0x952c4910, 0x4881ff48},
                     {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f},
                     {{1, 0xabee9704}, {2, 0x7ac31373}}},
        GoldenVector{"3gpp_set4_long",
                     {0x0ded7263, 0x109cf92e, 0x3352255a, 0x140e0f76},
                     {0x6b68079a, 0x41a7c4c9, 0x1befd79f, 0x7fdcc233},
                     {{1, 0xd712c05c}, {2, 0xa937c2a6}, {2500, 0x9c0db3aa}}},
        GoldenVector{"pin_seed101",
                     {0x05bfd51f, 0xc93c8ec8, 0x8d2dfe5d, 0xdfb06248},
                     {0x53048c0e, 0xf8600b02, 0xcb190927, 0x80cfd01b},
                     {{1, 0x7ef6aa5b}, {2, 0xc42f2c28}, {3, 0xe6489816}, {4, 0x02a0d0bc}}},
        GoldenVector{"pin_seed202",
                     {0xc5d901a7, 0xb074aa23, 0xfac2e4fb, 0xf2293c55},
                     {0x2c471ff4, 0xdfe849ce, 0xd67495f5, 0xd32d55f0},
                     {{1, 0x032914b4}, {2, 0x6fdbebf5}, {3, 0x1d13c65d}, {4, 0xecca2da7}}},
        GoldenVector{"pin_seed303",
                     {0x007c8e6a, 0x2c423dd6, 0x67564cfb, 0xc184453e},
                     {0xd845207d, 0x1f54c64a, 0xa40e3a8e, 0xf5a22799},
                     {{1, 0x715dcf99}, {2, 0x40333c59}, {3, 0x4e36df2e}, {4, 0xbad5c4c5}}}),
    [](const ::testing::TestParamInfo<GoldenVector>& info) { return info.param.name; });

TEST(Keystream, PaperTable3KeyIndependent) {
  const std::array<const char*, 16> expect = {
      "a1fb4788", "e4382f8e", "3b72471c", "33ebb59a", "32ac43c7", "5eebfd82",
      "3a325fd4", "1e1d7001", "b7f15767", "3282c5b0", "103da78f", "e42761e4",
      "c6ded1bb", "089fa36c", "01c7c690", "bf921256"};
  // Key/IV must be irrelevant under the beta fault; try two different keys.
  for (u64 seed : {0ull, 99ull}) {
    Rng rng(seed);
    const Key k = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
    const Iv iv = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
    Snow3g cipher(k, iv, FaultConfig::key_independent());
    for (const char* e : expect) EXPECT_EQ(hex32(cipher.next()), e);
  }
}

TEST(Keystream, PaperTable4FaultyKeystream) {
  const std::array<const char*, 16> expect = {
      "3ffe4851", "35d1c393", "5914acef", "e98446cc", "689782d9", "8abdb7fc",
      "a11b0377", "5a2dd294", "5deb29fa", "c2c6009a", "a82ee62f", "925268ed",
      "d04e2c33", "3890311b", "e8d27b84", "a70aeeaa"};
  Snow3g cipher(kPaperKey, kPaperIv, FaultConfig::full_attack());
  for (const char* e : expect) EXPECT_EQ(hex32(cipher.next()), e);
}

TEST(Reverse, PaperTable5RecoveredState) {
  Snow3g cipher(kPaperKey, kPaperIv, FaultConfig::full_attack());
  const std::vector<u32> z = cipher.keystream(16);
  const LfsrState s0 = state_from_faulty_keystream(z);
  const std::array<const char*, 16> expect = {
      "d429ba60", "7d3a4cff", "6ad3b6ef", "b77e00b7", "2bd6459f", "82c5b300",
      "952c4910", "4881ff48", "d429ba60", "6131b8a0", "b5cc2dca", "b77e00b7",
      "868a081b", "82c5b300", "952c4910", "a283b85c"};
  for (size_t i = 0; i < 16; ++i) EXPECT_EQ(hex32(s0[i]), expect[i]) << "s" << i;
}

TEST(Reverse, BackwardInvertsForward) {
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    LfsrState s{};
    for (auto& w : s) w = rng.next_u32();
    EXPECT_EQ(lfsr_backward(lfsr_forward(s)), s);
    EXPECT_EQ(lfsr_forward(lfsr_backward(s)), s);
  }
}

TEST(Reverse, RecoversPaperKeyAndIv) {
  Snow3g cipher(kPaperKey, kPaperIv, FaultConfig::full_attack());
  const auto secrets = recover_from_keystream(cipher.keystream(16));
  ASSERT_TRUE(secrets.has_value());
  EXPECT_EQ(secrets->key, kPaperKey);
  EXPECT_EQ(secrets->iv, kPaperIv);
}

class ReverseRandomKeys : public ::testing::TestWithParam<u64> {};

TEST_P(ReverseRandomKeys, FullAttackPipelineRecoversKey) {
  Rng rng(GetParam());
  const Key k = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  const Iv iv = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  Snow3g cipher(k, iv, FaultConfig::full_attack());
  const auto secrets = recover_from_keystream(cipher.keystream(16));
  ASSERT_TRUE(secrets.has_value());
  EXPECT_EQ(secrets->key, k);
  EXPECT_EQ(secrets->iv, iv);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReverseRandomKeys,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                                           16, 17, 18, 19, 20));

TEST(Reverse, RejectsInconsistentState) {
  // A random "keystream" almost surely violates the gamma redundancies.
  Rng rng(5);
  std::vector<u32> z;
  for (int i = 0; i < 16; ++i) z.push_back(rng.next_u32());
  EXPECT_FALSE(recover_from_keystream(z).has_value());
}

TEST(Reverse, NeedsSixteenWords) {
  std::vector<u32> z(15, 0);
  EXPECT_THROW(state_from_faulty_keystream(z), std::invalid_argument);
}

TEST(Faults, PartialMaskOnlyCutsSelectedBits) {
  // Cutting all 32 bits one at a time differs from cutting none.
  Snow3g none(kPaperKey, kPaperIv, FaultConfig::none());
  Snow3g bit0(kPaperKey, kPaperIv, FaultConfig{1u, false, false});
  EXPECT_NE(none.keystream(8), bit0.keystream(8));
}

TEST(Faults, OutputCutMakesKeystreamTheLfsrStream) {
  // With only the output cut, z_t = s0 of the (normally initialized) LFSR.
  Snow3g faulted(kPaperKey, kPaperIv, FaultConfig{0, true, false});
  Snow3g shadow(kPaperKey, kPaperIv, FaultConfig{0, false, false});
  for (int t = 0; t < 8; ++t) {
    const u32 s0 = shadow.lfsr()[0];
    EXPECT_EQ(faulted.next(), s0);
    (void)shadow.next();
  }
}

TEST(F8, EncryptDecryptRoundTrip) {
  Key128 ck{};
  for (size_t i = 0; i < 16; ++i) ck[i] = static_cast<u8>(i * 17);
  std::vector<u8> data(123);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i);
  const std::vector<u8> original = data;
  f8(ck, 0x12345678, 0x0c, 1, data, data.size() * 8);
  EXPECT_NE(data, original);
  f8(ck, 0x12345678, 0x0c, 1, data, data.size() * 8);
  EXPECT_EQ(data, original);
}

TEST(F8, PartialBitLengthLeavesTailUntouched) {
  Key128 ck{};
  std::vector<u8> data(8, 0xff);
  f8(ck, 1, 1, 0, data, 20);  // only 20 bits encrypted
  // Bits 20..63 must be untouched: last 5 bytes intact except high nibble
  // boundary within byte 2.
  EXPECT_EQ(data[3], 0xff);
  EXPECT_EQ(data[7], 0xff);
  EXPECT_EQ(data[2] & 0x0f, 0x0f);
}

TEST(F8, CountChangesKeystream) {
  Key128 ck{};
  std::vector<u8> a(16, 0), b(16, 0);
  f8(ck, 1, 0, 0, a, 128);
  f8(ck, 2, 0, 0, b, 128);
  EXPECT_NE(a, b);
}

TEST(F9, DeterministicAndSensitive) {
  Key128 ik{};
  for (size_t i = 0; i < 16; ++i) ik[i] = static_cast<u8>(255 - i);
  std::vector<u8> msg(40);
  for (size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<u8>(i * 3);
  const u32 mac = f9(ik, 5, 6, 0, msg, msg.size() * 8);
  EXPECT_EQ(f9(ik, 5, 6, 0, msg, msg.size() * 8), mac);
  // Any single-bit change must change the MAC.
  msg[10] ^= 0x40;
  EXPECT_NE(f9(ik, 5, 6, 0, msg, msg.size() * 8), mac);
  msg[10] ^= 0x40;
  EXPECT_NE(f9(ik, 5, 6, 1, msg, msg.size() * 8), mac);   // direction
  EXPECT_NE(f9(ik, 6, 6, 0, msg, msg.size() * 8), mac);   // count
  EXPECT_NE(f9(ik, 5, 7, 0, msg, msg.size() * 8), mac);   // fresh
  EXPECT_NE(f9(ik, 5, 6, 0, msg, msg.size() * 8 - 8), mac);  // length
}

TEST(F9, LengthBeyondBufferRejected) {
  Key128 ik{};
  std::vector<u8> msg(4);
  EXPECT_THROW(f9(ik, 0, 0, 0, msg, 64), std::invalid_argument);
  std::vector<u8> data(4);
  EXPECT_THROW(f8(ik, 0, 0, 0, data, 64), std::invalid_argument);
}

TEST(WordKey, LoadingConvention) {
  Key128 ck{};
  ck[0] = 0x2b;
  ck[1] = 0xd6;
  ck[2] = 0x45;
  ck[3] = 0x9f;
  const Key k = to_word_key(ck);
  EXPECT_EQ(k[3], 0x2bd6459fu);  // first bytes land in k3
}

}  // namespace
}  // namespace sbm::snow3g
