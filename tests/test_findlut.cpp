// FINDLUT (Algorithm 1) tests: planted-LUT recovery, naive/optimized
// differential testing, and family scans against the assembled system.
#include <gtest/gtest.h>

#include <set>

#include "attack/findlut.h"
#include "attack/scan.h"
#include "bitstream/patcher.h"
#include "common/rng.h"
#include "fpga/system.h"

namespace sbm::attack {
namespace {

using logic::InputPermutation;
using logic::TruthTable6;

/// Plants `init` at byte index l with the given stride/order inside a
/// random-free buffer (zero background).
std::vector<u8> plant(size_t size, size_t l, size_t d, const std::array<u8, 4>& order,
                      u64 init) {
  std::vector<u8> bytes(size, 0);
  bitstream::write_lut_init(bytes, l, d, order, init);
  return bytes;
}

struct PlantParam {
  size_t offset_d;
  size_t l;
  unsigned order_index;  // 0 = SLICEL, 1 = SLICEM
  unsigned perm_index;
};

class PlantedLut : public ::testing::TestWithParam<PlantParam> {};

TEST_P(PlantedLut, FindsTheLutUnderAnyPermutationAndOrder) {
  const PlantParam p = GetParam();
  const TruthTable6 f = logic::table2_candidate("f2").function;
  const auto& perm = logic::all_permutations6()[p.perm_index * 97 % 720];
  const TruthTable6 stored = f.permuted(perm);
  const auto order = bitstream::device_chunk_orders()[p.order_index];

  FindLutOptions opt;
  opt.offset_d = p.offset_d;
  const auto bytes = plant(p.l + 3 * p.offset_d + 64, p.l, p.offset_d, order, stored.bits());
  const auto matches = find_lut(bytes, f, opt);
  // The planted position must be reported (no false negatives); extra
  // alignment false positives are legitimate Algorithm 1 behavior and get
  // pruned by verification, exactly as in the paper.
  const LutMatch* planted_match = nullptr;
  for (const auto& m : matches) {
    if (m.byte_index == p.l) planted_match = &m;
  }
  ASSERT_NE(planted_match, nullptr);
  // Whatever (table, order) representation matched must reproduce the
  // planted bytes and lie in f's P class.
  EXPECT_EQ(f.permuted(planted_match->perm), planted_match->matched_table);
  EXPECT_EQ(bitstream::read_lut_init(bytes, p.l, p.offset_d, planted_match->order),
            planted_match->matched_table.bits());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlantedLut,
    ::testing::Values(PlantParam{101, 0, 0, 0},   // the paper's d = 101
                      PlantParam{101, 57, 1, 3},  //
                      PlantParam{404, 0, 0, 1},   // our frame stride
                      PlantParam{404, 398, 1, 5}, //
                      PlantParam{16, 8, 0, 7},    //
                      PlantParam{1000, 123, 1, 11}));

TEST(FindLut, NaiveMatchesOptimizedOnRandomBuffers) {
  Rng rng(1);
  FindLutOptions opt;
  opt.offset_d = 101;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<u8> bytes(2048);
    for (auto& b : bytes) b = static_cast<u8>(rng.next_u64());
    // Plant two LUTs so there is something to find.
    const TruthTable6 f = logic::table2_candidate("f8").function;
    bitstream::write_lut_init(bytes, 11, opt.offset_d, bitstream::device_chunk_orders()[0],
                              f.permuted(logic::all_permutations6()[5]).bits());
    bitstream::write_lut_init(bytes, 500, opt.offset_d, bitstream::device_chunk_orders()[1],
                              f.bits());
    const auto fast = find_lut(bytes, f, opt);
    const auto naive = find_lut_naive(bytes, f, opt);
    ASSERT_EQ(fast.size(), naive.size());
    std::set<size_t> fast_l, naive_l;
    for (const auto& m : fast) fast_l.insert(m.byte_index);
    for (const auto& m : naive) naive_l.insert(m.byte_index);
    EXPECT_EQ(fast_l, naive_l);
    EXPECT_TRUE(fast_l.count(11));
    EXPECT_TRUE(fast_l.count(500));
  }
}

TEST(FindLut, AllOrdersModeFindsNonDeviceOrders) {
  // Store with an exotic sub-vector order; only try_all_orders finds it.
  const TruthTable6 f = logic::table2_candidate("f19").function;
  const std::array<u8, 4> exotic = {1, 3, 0, 2};
  FindLutOptions opt;
  opt.offset_d = 64;
  auto bytes = plant(512, 32, opt.offset_d, exotic, f.bits());
  EXPECT_TRUE(find_lut(bytes, f, opt).empty());
  opt.try_all_orders = true;
  const auto matches = find_lut(bytes, f, opt);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].byte_index, 32u);
}

TEST(FindLut, AllChunkOrdersEnumerates24) {
  EXPECT_EQ(all_chunk_orders().size(), 24u);
}

TEST(FindLut, MarkPreventsDuplicateIndexes) {
  // A symmetric function matches under many permutations; each byte index
  // must still be reported once.
  const TruthTable6 x6 = TruthTable6(0x6996966996696996ull);  // XOR of 6 vars
  FindLutOptions opt;
  opt.offset_d = 32;
  const auto bytes = plant(256, 16, opt.offset_d, bitstream::device_chunk_orders()[0],
                           x6.bits());
  const auto matches = find_lut(bytes, x6, opt);
  std::set<size_t> idx;
  for (const auto& m : matches) EXPECT_TRUE(idx.insert(m.byte_index).second);
}

TEST(FindLut, EmptyAndTinyBuffers) {
  const TruthTable6 f = logic::table2_candidate("f2").function;
  EXPECT_TRUE(find_lut({}, f).empty());
  std::vector<u8> tiny(8, 0xff);
  EXPECT_TRUE(find_lut(tiny, f).empty());
}

TEST(FindLut, PermutationMetadataIsConsistent) {
  // The reported permutation must map f onto the matched table.
  const TruthTable6 f = logic::table2_candidate("f12").function;
  const auto& perm = logic::all_permutations6()[321];
  FindLutOptions opt;
  opt.offset_d = 101;
  const auto bytes = plant(512, 7, opt.offset_d, bitstream::device_chunk_orders()[1],
                           f.permuted(perm).bits());
  const auto matches = find_lut(bytes, f, opt);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(f.permuted(matches[0].perm), matches[0].matched_table);
}

// ---- scans against the real assembled system (Table II analog) ------------

class GoldenScan : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { system_ = new fpga::System(fpga::build_system()); }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  static fpga::System* system_;
};
fpga::System* GoldenScan::system_ = nullptr;

TEST_F(GoldenScan, SomeKeystreamCandidateHasAtLeast32Matches) {
  // Table II structure: the winning z-path candidate has >= 32 matches (the
  // paper's f2 had 81; ours is a different control encoding).
  size_t best = 0;
  for (const auto& fc : scan_family(system_->golden.bytes, logic::table2_family())) {
    if (fc.candidate.path == logic::TargetPath::kKeystream) best = std::max(best, fc.count());
  }
  EXPECT_GE(best, 32u);
}

TEST_F(GoldenScan, TruePositionsAreAmongTheMatches) {
  const auto truth = system_->target_luts();
  std::set<size_t> z_truth;
  for (const auto& t : truth) {
    if (t.on_z_path) z_truth.insert(t.byte_index);
  }
  std::set<size_t> found;
  for (const auto& fc : scan_family(system_->golden.bytes, attack_family())) {
    for (const auto& m : fc.matches) found.insert(m.byte_index);
  }
  size_t covered = 0;
  for (const size_t l : z_truth) covered += found.count(l);
  EXPECT_EQ(covered, z_truth.size()) << "every true z-path LUT must be found";
}

TEST_F(GoldenScan, MuxFamilyFindsTheLoadMuxPopulation) {
  size_t hits = 0;
  for (const auto& fc : scan_family(system_->golden.bytes, mux_scan_family())) {
    hits += fc.count();
  }
  // 512 stage-MUX bits pack into ~256 sites; most are exact-family hits.
  EXPECT_GE(hits, 200u);
}

TEST_F(GoldenScan, AttackFamilyHasNoDuplicateFunctions) {
  std::set<u64> tables;
  for (const auto& c : attack_family()) {
    EXPECT_TRUE(tables.insert(c.function.bits()).second) << c.name;
  }
}

}  // namespace
}  // namespace sbm::attack
