// Device-model tests: configuration from (modified) bitstreams and
// keystream equivalence with the software reference.
#include <gtest/gtest.h>

#include "bitstream/patcher.h"
#include "bitstream/secure.h"
#include "common/rng.h"
#include "fpga/system.h"
#include "snow3g/snow3g.h"

namespace sbm::fpga {
namespace {

class DeviceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { system_ = new System(build_system()); }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }
  static System* system_;
};
System* DeviceTest::system_ = nullptr;

TEST_F(DeviceTest, ConfiguresFromGoldenBitstream) {
  Device dev = system_->make_device();
  EXPECT_FALSE(dev.configured());
  ASSERT_TRUE(dev.configure(system_->golden.bytes)) << dev.error();
  EXPECT_TRUE(dev.configured());
  EXPECT_EQ(dev.loaded_key(), system_->options.key);
}

TEST_F(DeviceTest, KeystreamMatchesSoftwareModel) {
  Device dev = system_->make_device();
  ASSERT_TRUE(dev.configure(system_->golden.bytes));
  Rng rng(1);
  for (int trial = 0; trial < 3; ++trial) {
    const snow3g::Iv iv = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
    snow3g::Snow3g ref(system_->options.key, iv);
    EXPECT_EQ(dev.keystream(iv, 10), ref.keystream(10));
  }
}

TEST_F(DeviceTest, RejectsCorruptBitstream) {
  auto bytes = system_->golden.bytes;
  bytes[system_->golden.layout.fdri_byte_offset + 2] ^= 0x04;
  Device dev = system_->make_device();
  EXPECT_FALSE(dev.configure(bytes));
  EXPECT_FALSE(dev.error().empty());
  EXPECT_THROW(dev.keystream({}, 1), std::logic_error);
}

TEST_F(DeviceTest, AcceptsCrcDisabledModifiedBitstream) {
  auto bytes = system_->golden.bytes;
  bitstream::disable_crc(bytes);
  bytes[system_->golden.layout.fdri_byte_offset + 2] ^= 0x04;
  Device dev = system_->make_device();
  EXPECT_TRUE(dev.configure(bytes)) << dev.error();
}

TEST_F(DeviceTest, PatchedLutChangesBehaviorPredictably) {
  // Zero a z-path LUT and check exactly that keystream bit dies — the
  // paper's verification step (Section VI-C.1), from the defender's side.
  const auto truth = system_->target_luts();
  const snow3g::Iv iv = {0x11111111, 0x22222222, 0x33333333, 0x44444444};
  Device clean = system_->make_device();
  ASSERT_TRUE(clean.configure(system_->golden.bytes));
  const std::vector<u32> golden = clean.keystream(iv, 12);

  for (const auto& t : truth) {
    if (!t.on_z_path) continue;
    auto bytes = system_->golden.bytes;
    bitstream::disable_crc(bytes);
    const auto order = bitstream::chunk_order(
        system_->placed.slice_of(system_->placed.site_of_lut(t.lut_index).phys_index));
    bitstream::write_lut_init(bytes, t.byte_index, bitstream::Layout::chunk_stride(), order, 0);
    Device dev = system_->make_device();
    ASSERT_TRUE(dev.configure(bytes));
    const std::vector<u32> z = dev.keystream(iv, 12);
    for (size_t w = 0; w < z.size(); ++w) {
      EXPECT_EQ(z[w], golden[w] & ~(1u << t.bit)) << "word " << w << " bit " << t.bit;
    }
    break;  // one representative z-path LUT suffices here
  }
}

TEST_F(DeviceTest, GroundTruthCoversAllBitsOnBothPaths) {
  const auto truth = system_->target_luts();
  std::array<bool, 32> z_bits{}, fb_bits{};
  for (const auto& t : truth) (t.on_z_path ? z_bits : fb_bits)[t.bit] = true;
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_TRUE(z_bits[i]) << "z bit " << i;
    EXPECT_TRUE(fb_bits[i]) << "feedback bit " << i;
  }
}

TEST_F(DeviceTest, EncryptedConfigurationRoundTrip) {
  crypto::Aes256Key ke{};
  ke[0] = 0xAA;
  bitstream::AuthKey ka{};
  ka[7] = 0x42;
  const auto enc = bitstream::protect_bitstream(system_->golden.bytes, ke, ka, {});
  Device dev = system_->make_device();
  ASSERT_TRUE(dev.configure_encrypted(enc, ke)) << dev.error();
  const snow3g::Iv iv{};
  snow3g::Snow3g ref(system_->options.key, iv);
  EXPECT_EQ(dev.keystream(iv, 4), ref.keystream(4));
  // Wrong decryption key: rejected.
  crypto::Aes256Key wrong{};
  Device dev2 = system_->make_device();
  EXPECT_FALSE(dev2.configure_encrypted(enc, wrong));
}

TEST(SystemBuild, DifferentKeysGiveDifferentBitstreams) {
  SystemOptions a, b;
  b.key = {1, 2, 3, 4};
  const System sa = build_system(a);
  const System sb = build_system(b);
  EXPECT_NE(sa.golden.bytes, sb.golden.bytes);
  Device db = sb.make_device();
  ASSERT_TRUE(db.configure(sb.golden.bytes));
  EXPECT_EQ(db.loaded_key(), b.key);
}

TEST(SystemBuild, ProtectedSystemStillFunctionallyCorrect) {
  SystemOptions opt;
  opt.protected_variant = true;
  const System sys = build_system(opt);
  Device dev = sys.make_device();
  ASSERT_TRUE(dev.configure(sys.golden.bytes)) << dev.error();
  const snow3g::Iv iv = {5, 6, 7, 8};
  snow3g::Snow3g ref(opt.key, iv);
  EXPECT_EQ(dev.keystream(iv, 8), ref.keystream(8));
}

}  // namespace
}  // namespace sbm::fpga
