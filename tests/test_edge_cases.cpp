// Cross-module edge cases and invariants not covered by the per-module
// suites: fault-model algebra, timing-model knobs, oracle accounting,
// assembler geometry limits, and candidate-family interactions.
#include <gtest/gtest.h>

#include "attack/oracle.h"
#include "attack/scan.h"
#include "bitstream/assembler.h"
#include "common/rng.h"
#include "fpga/system.h"
#include "mapper/sta.h"
#include "snow3g/reverse.h"
#include "snow3g/snow3g.h"

namespace sbm {
namespace {

TEST(FaultAlgebra, FullMaskEqualsKeyIndependentTable3) {
  // FaultConfig::key_independent() == zero-load + all-bits feedback cut.
  snow3g::Snow3g a({1, 2, 3, 4}, {5, 6, 7, 8}, snow3g::FaultConfig::key_independent());
  snow3g::Snow3g b({9, 9, 9, 9}, {0, 0, 0, 0}, {0xffffffffu, false, true});
  EXPECT_EQ(a.keystream(16), b.keystream(16));
}

TEST(FaultAlgebra, UnionOfSingleBitCutsEqualsFullCut) {
  // Cutting bits {0..31} one mask is the same as the full 32-bit cut.
  const snow3g::Key k = {0xaaaa5555, 0x12345678, 0x9abcdef0, 0x0f0f0f0f};
  const snow3g::Iv iv = {1, 2, 3, 4};
  snow3g::Snow3g full(k, iv, {0xffffffffu, true, false});
  u32 mask = 0;
  for (int i = 0; i < 32; ++i) mask |= 1u << i;
  snow3g::Snow3g built(k, iv, {mask, true, false});
  EXPECT_EQ(full.keystream(16), built.keystream(16));
}

TEST(FaultAlgebra, FaultyKeystreamIsShiftedLfsrState) {
  // With the full fault, consecutive keystream words walk the state: word
  // t+1 of one run equals word t of the state advanced by one step.
  const snow3g::Key k = {0x13572468, 0xfeedbeef, 0x0, 0xffffffff};
  const snow3g::Iv iv = {4, 3, 2, 1};
  snow3g::Snow3g cipher(k, iv, snow3g::FaultConfig::full_attack());
  const std::vector<u32> z = cipher.keystream(17);
  snow3g::LfsrState s = snow3g::state_from_faulty_keystream(std::span(z).subspan(0, 16), 0);
  s = snow3g::lfsr_forward(s);
  for (int i = 0; i < 15; ++i) EXPECT_EQ(s[static_cast<size_t>(i)], z[static_cast<size_t>(i) + 1]);
}

TEST(TimingModel, KnobsScaleTheReport) {
  auto design = netlist::build_snow3g_design();
  const mapper::LutNetwork mapped = mapper::map_network(design.net);
  mapper::TimingModel slow;
  slow.lut_delay_ns *= 2;
  slow.net_delay_ns *= 2;
  slow.bram_delay_ns *= 2;
  slow.carry_delay_ns *= 2;
  const auto a = mapper::run_sta(design.net, mapped);
  const auto b = mapper::run_sta(design.net, mapped, slow);
  EXPECT_GT(b.critical_delay_ns, a.critical_delay_ns);
}

TEST(Oracle, CountsEveryRunIncludingRejections) {
  const fpga::System sys = fpga::build_system();
  attack::DeviceOracle oracle(sys, {1, 2, 3, 4});
  EXPECT_EQ(oracle.runs(), 0u);
  EXPECT_TRUE(oracle.run(sys.golden.bytes, 4).has_value());
  auto corrupt = sys.golden.bytes;
  corrupt[sys.golden.layout.fdri_byte_offset] ^= 1;
  EXPECT_FALSE(oracle.run(corrupt, 4).has_value());
  EXPECT_EQ(oracle.runs(), 2u);
}

TEST(Oracle, KeystreamDependsOnOracleIv) {
  const fpga::System sys = fpga::build_system();
  attack::DeviceOracle a(sys, {1, 2, 3, 4});
  attack::DeviceOracle b(sys, {4, 3, 2, 1});
  EXPECT_NE(a.run(sys.golden.bytes, 8), b.run(sys.golden.bytes, 8));
}

TEST(AssemblerGeometry, LayoutScalesWithSiteCount) {
  // Small and large designs produce consistent geometry.
  fpga::SystemOptions opt;
  const fpga::System sys = fpga::build_system(opt);
  const auto& layout = sys.golden.layout;
  EXPECT_EQ(layout.frame_count,
            layout.groups() * bitstream::kFramesPerGroup + 1);  // + key frame
  EXPECT_EQ(layout.site_byte_index(0), layout.fdri_byte_offset);
  // Sites within one group share the group's frame span.
  if (layout.site_count > 1) {
    EXPECT_EQ(layout.site_byte_index(1) - layout.site_byte_index(0), 2u);
  }
  EXPECT_THROW(layout.site_byte_index(layout.site_count), std::out_of_range);
}

TEST(AssemblerGeometry, KeyFrameIsLast) {
  const fpga::System sys = fpga::build_system();
  const auto& layout = sys.golden.layout;
  EXPECT_EQ(layout.key_byte_index(),
            layout.fdri_byte_offset + (layout.frame_count - 1) * bitstream::kFrameBytes);
  EXPECT_LT(layout.key_byte_index() + 16, sys.golden.bytes.size());
}

TEST(Families, AttackFamilyCoversBothPaths) {
  size_t keystream = 0, feedback = 0;
  for (const auto& c : attack::attack_family()) {
    (c.path == logic::TargetPath::kKeystream ? keystream : feedback)++;
  }
  EXPECT_GE(keystream, 7u);   // at least the Table II z-path entries
  EXPECT_GE(feedback, 14u);   // Table II feedback entries plus extensions
}

TEST(Families, MuxScanFamilyContainsPaperShapesAndFolds) {
  bool has_mux2 = false, has_fold = false;
  for (const auto& c : attack::mux_scan_family()) {
    has_mux2 = has_mux2 || c.function == logic::f_mux2();
    has_fold = has_fold || c.name.rfind("mux_fold", 0) == 0;
    EXPECT_EQ(c.sel_var, 0) << c.name;
  }
  EXPECT_TRUE(has_mux2);
  EXPECT_TRUE(has_fold);
}

TEST(Reverse, StateFromKeystreamStepsParameter) {
  Rng rng(7);
  std::vector<u32> z;
  for (int i = 0; i < 16; ++i) z.push_back(rng.next_u32());
  // steps = 0 is the identity embedding.
  const snow3g::LfsrState s0 = snow3g::state_from_faulty_keystream(z, 0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(s0[static_cast<size_t>(i)], z[static_cast<size_t>(i)]);
  // steps = k then forward k returns the embedding.
  snow3g::LfsrState s = snow3g::state_from_faulty_keystream(z, 5);
  for (int i = 0; i < 5; ++i) s = snow3g::lfsr_forward(s);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(s[static_cast<size_t>(i)], z[static_cast<size_t>(i)]);
}

TEST(Device, Reconfiguration) {
  // A device can be reconfigured with a different bitstream; the last load
  // wins, like a real SRAM part.
  fpga::SystemOptions a, b;
  b.key = {0x11112222, 0x33334444, 0x55556666, 0x77778888};
  const fpga::System sys_a = fpga::build_system(a);
  const fpga::System sys_b = fpga::build_system(b);
  fpga::Device dev = sys_a.make_device();
  ASSERT_TRUE(dev.configure(sys_a.golden.bytes));
  EXPECT_EQ(dev.loaded_key(), a.key);
  ASSERT_TRUE(dev.configure(sys_b.golden.bytes));  // same geometry, new key
  EXPECT_EQ(dev.loaded_key(), b.key);
}

TEST(Device, KeystreamIsRepeatable) {
  const fpga::System sys = fpga::build_system();
  fpga::Device dev = sys.make_device();
  ASSERT_TRUE(dev.configure(sys.golden.bytes));
  const snow3g::Iv iv = {10, 20, 30, 40};
  EXPECT_EQ(dev.keystream(iv, 8), dev.keystream(iv, 8));
  EXPECT_NE(dev.keystream(iv, 8), dev.keystream({11, 20, 30, 40}, 8));
}

}  // namespace
}  // namespace sbm
