// Shared test harness: drives a SNOW 3G design (netlist- or LUT-level
// simulator) through the warm-up / load / init / discard / generate
// sequence and collects keystream words.
#pragma once

#include <vector>

#include "mapper/lut_network.h"
#include "netlist/sim.h"
#include "netlist/snow3g_design.h"
#include "snow3g/snow3g.h"

namespace sbm::testing {

template <typename Sim>
std::vector<u32> run_design(const netlist::Snow3gDesign& d, Sim& sim, const snow3g::Key& key,
                            const snow3g::Iv& iv, size_t words) {
  for (int i = 0; i < 4; ++i) {
    sim.set_input_word(d.key[static_cast<size_t>(i)], key[static_cast<size_t>(i)]);
    sim.set_input_word(d.iv[static_cast<size_t>(i)], iv[static_cast<size_t>(i)]);
  }
  auto drive = [&](bool load, bool init, bool gen) {
    sim.set_input(d.load, load);
    sim.set_input(d.init, init);
    sim.set_input(d.gen, gen);
  };
  drive(false, false, false);  // gamma pipeline warm-up
  sim.step();
  drive(true, false, false);
  sim.step();
  for (int round = 0; round < 32; ++round) {
    drive(false, true, false);
    sim.step();
  }
  drive(false, false, true);
  sim.step();  // discarded clock
  std::vector<u32> z;
  for (size_t t = 0; t < words; ++t) {
    drive(false, false, true);
    sim.settle();
    z.push_back(sim.read_word(d.z));
    sim.clock();
  }
  return z;
}

}  // namespace sbm::testing
