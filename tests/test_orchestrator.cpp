// campaign::Orchestrator: the reusable trial fan-out behind run_campaign and
// the service daemon — hooks (progress streaming, cancellation, pluggable
// trial body), external-pool sharing, and checkpoint/resume interplay.
//
// Trials here use a deterministic stand-in body (Hooks::trial_fn), so these
// tests exercise orchestration semantics at microsecond cost; the real
// attack path through the same machinery is covered by test_campaign.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "campaign/checkpoint.h"
#include "campaign/orchestrator.h"
#include "runtime/thread_pool.h"

namespace sbm::campaign {
namespace {

/// Pure function of (options, index) — the TrialFn contract.
TrialOutcome fake_trial(const CampaignOptions& options, size_t index, runtime::ThreadPool*) {
  TrialOutcome t;
  t.index = index;
  t.trial_seed = options.seed * 1000003ull + index * 7919;
  t.protected_variant = options.protected_every != 0 &&
                        index % options.protected_every == options.protected_every - 1;
  t.attack_success = !t.protected_variant;
  t.key_match = t.attack_success;
  t.expected = true;
  t.oracle_runs = 10 + index;
  t.cache_hits = index % 3;
  t.probe_calls = t.oracle_runs + t.cache_hits;
  t.phase_runs = {{"fake.scan", index + 1}, {"fake.verify", 2}};
  return t;
}

CampaignOptions base_options(size_t trials) {
  CampaignOptions options;
  options.trials = trials;
  options.threads = 1;
  options.seed = 0xfeedbee5;
  options.protected_every = 4;
  return options;
}

Orchestrator::Hooks fake_hooks() {
  Orchestrator::Hooks hooks;
  hooks.trial_fn = fake_trial;
  return hooks;
}

TEST(Orchestrator, OnTrialStreamsMonotonicProgress) {
  CampaignOptions options = base_options(8);
  Orchestrator::Hooks hooks = fake_hooks();
  std::vector<size_t> completed_seq;
  hooks.on_trial = [&](const TrialOutcome&, size_t completed, size_t total) {
    EXPECT_EQ(total, 8u);
    completed_seq.push_back(completed);
  };
  const CampaignReport report = Orchestrator().run(options, hooks);
  ASSERT_EQ(completed_seq.size(), 8u);
  for (size_t i = 0; i < completed_seq.size(); ++i) EXPECT_EQ(completed_seq[i], i + 1);
  EXPECT_EQ(report.trials.size(), 8u);
  EXPECT_EQ(report.cancelled_trials, 0u);
  EXPECT_TRUE(report.all_expected());
}

TEST(Orchestrator, AggregateMatchesAccumulatePerTrial) {
  const CampaignOptions options = base_options(6);
  const CampaignReport report = Orchestrator().run(options, fake_hooks());
  CampaignReport manual;
  for (const TrialOutcome& t : report.trials) manual.accumulate(t);
  EXPECT_EQ(manual.total_oracle_runs, report.total_oracle_runs);
  EXPECT_EQ(manual.total_probe_calls, report.total_probe_calls);
  EXPECT_EQ(manual.unprotected_successes, report.unprotected_successes);
  EXPECT_EQ(manual.protected_resisted, report.protected_resisted);
  EXPECT_EQ(manual.phase_run_totals, report.phase_run_totals);
}

TEST(Orchestrator, CancelSkipsRemainingTrials) {
  CampaignOptions options = base_options(8);
  std::atomic<bool> cancel{false};
  Orchestrator::Hooks hooks = fake_hooks();
  hooks.cancel = &cancel;
  hooks.on_trial = [&](const TrialOutcome&, size_t completed, size_t) {
    if (completed == 3) cancel.store(true);
  };
  const CampaignReport report = Orchestrator().run(options, hooks);
  EXPECT_EQ(report.trials.size(), 3u);
  EXPECT_EQ(report.cancelled_trials, 5u);
  // The finished prefix is still coherently aggregated.
  size_t oracle = 0;
  for (const TrialOutcome& t : report.trials) oracle += t.oracle_runs;
  EXPECT_EQ(report.total_oracle_runs, oracle);
}

TEST(Orchestrator, CancelledRunResumesToIdenticalFingerprint) {
  const std::string path = ::testing::TempDir() + "sbm_orch_cancel_resume.json";
  std::remove(path.c_str());

  CampaignOptions options = base_options(10);
  const CampaignReport straight = Orchestrator().run(options, fake_hooks());

  options.checkpoint_path = path;
  std::atomic<bool> cancel{false};
  Orchestrator::Hooks hooks = fake_hooks();
  hooks.cancel = &cancel;
  hooks.on_trial = [&](const TrialOutcome&, size_t completed, size_t) {
    if (completed == 4) cancel.store(true);
  };
  const CampaignReport interrupted = Orchestrator().run(options, hooks);
  EXPECT_EQ(interrupted.trials.size(), 4u);
  EXPECT_NE(interrupted.fingerprint(), straight.fingerprint());

  options.resume = true;
  const CampaignReport resumed = Orchestrator().run(options, fake_hooks());
  EXPECT_EQ(resumed.trials.size(), 10u);
  EXPECT_EQ(resumed.resumed_trials, 4u);
  EXPECT_EQ(resumed.fingerprint(), straight.fingerprint());
  std::remove(path.c_str());
}

TEST(Orchestrator, ExternalPoolAndThreadCountInvariance) {
  CampaignOptions options = base_options(12);
  const u64 serial_fp = Orchestrator(nullptr).run(options, fake_hooks()).fingerprint();

  runtime::ThreadPool pool(8);
  const Orchestrator shared(&pool);
  EXPECT_EQ(shared.run(options, fake_hooks()).fingerprint(), serial_fp);
  // The same orchestrator serves several runs off one pool (daemon usage).
  EXPECT_EQ(shared.run(options, fake_hooks()).fingerprint(), serial_fp);

  options.threads = 8;
  EXPECT_EQ(Orchestrator().run(options, fake_hooks()).fingerprint(), serial_fp);
}

TEST(Orchestrator, RunCampaignRoutesThroughDefaultTrialBody) {
  // No trial_fn: the orchestrator must run the real attack trial.  One tiny
  // trial keeps this cheap; full campaign behaviour lives in test_campaign.
  CampaignOptions options;
  options.trials = 1;
  options.threads = 1;
  options.seed = 0x7e57;
  const CampaignReport direct = Orchestrator().run(options);
  const CampaignReport via_run_campaign = run_campaign(options);
  EXPECT_EQ(direct.fingerprint(), via_run_campaign.fingerprint());
  EXPECT_EQ(direct.trials.size(), 1u);
  EXPECT_TRUE(direct.trials[0].attack_success);
}

}  // namespace
}  // namespace sbm::campaign
