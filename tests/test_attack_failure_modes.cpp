// Attack pipeline failure modes: the pipeline must degrade gracefully (a
// diagnostic, not a crash or a wrong key) when the oracle or the bitstream
// is not what it expects.
#include <gtest/gtest.h>

#include "attack/pipeline.h"
#include "common/rng.h"
#include "fpga/system.h"

namespace sbm::attack {
namespace {

/// An oracle for a device that refuses every bitstream (e.g. eFUSE-locked).
class RejectingOracle : public Oracle {
 public:
  runtime::ProbeOutcome run(std::span<const u8>, size_t) override {
    ++runs_;
    return std::nullopt;
  }
};

/// An oracle that returns constant garbage regardless of the bitstream
/// (e.g. the probe is not actually connected to the keystream port).
class GarbageOracle : public Oracle {
 public:
  runtime::ProbeOutcome run(std::span<const u8>, size_t words) override {
    ++runs_;
    return std::vector<u32>(words, 0x42424242u);
  }
};

TEST(AttackFailureModes, RejectingDevice) {
  const fpga::System sys = fpga::build_system();
  RejectingOracle oracle;
  Attack attack(oracle, sys.golden.bytes, {});
  const AttackResult res = attack.execute();
  EXPECT_FALSE(res.success);
  EXPECT_EQ(res.failure, "golden bitstream rejected by device");
  EXPECT_EQ(oracle.runs(), 1u);
}

TEST(AttackFailureModes, UnresponsiveKeystreamPort) {
  const fpga::System sys = fpga::build_system();
  GarbageOracle oracle;
  Attack attack(oracle, sys.golden.bytes, {});
  const AttackResult res = attack.execute();
  // Constant output never shows a single-bit kill, so phase 1 cannot verify
  // any LUT1 and the pipeline reports that.
  EXPECT_FALSE(res.success);
  EXPECT_FALSE(res.failure.empty());
}

TEST(AttackFailureModes, GarbageBitstream) {
  const fpga::System sys = fpga::build_system();
  Rng rng(1);
  std::vector<u8> garbage(sys.golden.bytes.size());
  for (auto& b : garbage) b = static_cast<u8>(rng.next_u64());
  DeviceOracle oracle(sys, {1, 2, 3, 4});
  Attack attack(oracle, garbage, {});
  const AttackResult res = attack.execute();
  EXPECT_FALSE(res.success);
  EXPECT_FALSE(res.failure.empty());
}

TEST(AttackFailureModes, LogNarratesTheRun) {
  const fpga::System sys = fpga::build_system();
  const snow3g::Iv iv = {5, 6, 7, 8};
  DeviceOracle oracle(sys, iv);
  PipelineConfig cfg;
  cfg.iv = iv;
  Attack attack(oracle, sys.golden.bytes, cfg);
  const AttackResult res = attack.execute();
  ASSERT_TRUE(res.success) << res.failure;
  // The log must mention every phase landmark.
  const std::string joined = [&] {
    std::string all;
    for (const auto& line : res.log) all += line + "\n";
    return all;
  }();
  EXPECT_NE(joined.find("CRC"), std::string::npos);
  EXPECT_NE(joined.find("z-path"), std::string::npos);
  EXPECT_NE(joined.find("beta"), std::string::npos);
  EXPECT_NE(joined.find("feedback"), std::string::npos);
  EXPECT_NE(joined.find("alpha2"), std::string::npos);
  EXPECT_NE(joined.find("key recovered"), std::string::npos);
}

}  // namespace
}  // namespace sbm::attack
