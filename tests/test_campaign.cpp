// Campaign subsystem tests + the runtime determinism contract on the real
// attack workloads: scan_family and the full pipeline must produce
// byte-identical results for 1 and 8 threads, and a campaign report must be
// identical (minus wall-clock) for any thread count.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "attack/pipeline.h"
#include "attack/scan.h"
#include "campaign/campaign.h"
#include "common/json.h"
#include "campaign/checkpoint.h"
#include "fpga/system.h"
#include "runtime/probe_cache.h"
#include "runtime/thread_pool.h"

namespace sbm {
namespace {

constexpr snow3g::Iv kHostIv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};

const fpga::System& shared_system() {
  static const fpga::System sys = fpga::build_system();
  return sys;
}

TEST(RuntimeDeterminism, ScanFamilyIsThreadCountInvariant) {
  const fpga::System& sys = shared_system();
  attack::FindLutOptions serial_opt;  // pool == nullptr
  const auto serial =
      attack::scan_family(sys.golden.bytes, attack::attack_family(), serial_opt);

  for (const unsigned threads : {1u, 8u}) {
    runtime::ThreadPool pool(threads);
    attack::FindLutOptions opt;
    opt.pool = &pool;
    opt.shard_grain = 1 << 10;  // force real sharding even on this bitstream
    const auto parallel =
        attack::scan_family(sys.golden.bytes, attack::attack_family(), opt);
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (size_t c = 0; c < serial.size(); ++c) {
      EXPECT_EQ(parallel[c].matches, serial[c].matches)
          << "candidate " << serial[c].candidate.name << ", " << threads << " threads";
    }
  }
}

TEST(RuntimeDeterminism, FindLutShardingMatchesSerial) {
  const fpga::System& sys = shared_system();
  const logic::TruthTable6 f = attack::attack_family().front().function;
  const auto serial = attack::find_lut(sys.golden.bytes, f);
  runtime::ThreadPool pool(8);
  attack::FindLutOptions opt;
  opt.pool = &pool;
  opt.shard_grain = 1;  // as many shards as the pool will take
  EXPECT_EQ(attack::find_lut(sys.golden.bytes, f, opt), serial);
}

TEST(RuntimeDeterminism, FullAttackIsThreadCountInvariant) {
  // The ISSUE's core acceptance test: Attack::execute() with 1 and with 8
  // threads (probe cache on) produces byte-identical results.
  const fpga::System& sys = shared_system();
  std::vector<attack::AttackResult> results;
  for (const unsigned threads : {1u, 8u}) {
    runtime::ThreadPool pool(threads);
    runtime::ProbeCache cache;
    attack::DeviceOracle oracle(sys, kHostIv);
    attack::PipelineConfig cfg;
    cfg.iv = kHostIv;
    cfg.find.pool = &pool;
    cfg.cache = &cache;
    attack::Attack attack(oracle, sys.golden.bytes, cfg);
    results.push_back(attack.execute());
    ASSERT_TRUE(results.back().success) << results.back().failure;
  }
  const attack::AttackResult& a = results[0];
  const attack::AttackResult& b = results[1];
  EXPECT_EQ(a.secrets.key, b.secrets.key);
  EXPECT_EQ(a.secrets.iv, b.secrets.iv);
  EXPECT_EQ(a.faulty_keystream, b.faulty_keystream);
  EXPECT_EQ(a.recovered_state, b.recovered_state);
  EXPECT_EQ(a.oracle_runs, b.oracle_runs);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.probe_calls, b.probe_calls);
  EXPECT_EQ(a.phase_runs, b.phase_runs);
  EXPECT_EQ(a.mux_patches, b.mux_patches);
  EXPECT_EQ(a.log, b.log);
  ASSERT_EQ(a.lut1.size(), b.lut1.size());
  for (size_t i = 0; i < a.lut1.size(); ++i) {
    EXPECT_EQ(a.lut1[i].match, b.lut1[i].match);
    EXPECT_EQ(a.lut1[i].bit, b.lut1[i].bit);
    EXPECT_EQ(a.lut1[i].trio, b.lut1[i].trio);
    EXPECT_EQ(a.lut1[i].s0_var, b.lut1[i].s0_var);
  }
  ASSERT_EQ(a.feedback.size(), b.feedback.size());
  for (size_t i = 0; i < a.feedback.size(); ++i) {
    EXPECT_EQ(a.feedback[i].byte_index, b.feedback[i].byte_index);
    EXPECT_EQ(a.feedback[i].half, b.feedback[i].half);
    EXPECT_EQ(a.feedback[i].zero_all, b.feedback[i].zero_all);
    EXPECT_EQ(a.feedback[i].zero_vars, b.feedback[i].zero_vars);
    EXPECT_EQ(a.feedback[i].bit, b.feedback[i].bit);
  }
  // The recovered key is the planted one, and the cache never inflates the
  // paper's cost metric: true oracle runs + hits account for every probe.
  EXPECT_EQ(a.secrets.key, sys.options.key);
  EXPECT_EQ(a.oracle_runs + a.cache_hits, a.probe_calls);
}

TEST(Campaign, TrialIsSelfContainedAndSeeded) {
  campaign::CampaignOptions opt;
  opt.trials = 1;
  opt.seed = 0x1234;
  const campaign::TrialOutcome once = campaign::run_trial(opt, 0, nullptr);
  const campaign::TrialOutcome again = campaign::run_trial(opt, 0, nullptr);
  EXPECT_EQ(once.trial_seed, again.trial_seed);
  EXPECT_EQ(once.attack_success, again.attack_success);
  EXPECT_EQ(once.oracle_runs, again.oracle_runs);
  EXPECT_EQ(once.cache_hits, again.cache_hits);
  EXPECT_TRUE(once.expected) << once.failure;
  EXPECT_TRUE(once.key_match);

  // A different trial index yields a different victim.
  const campaign::TrialOutcome other = campaign::run_trial(opt, 1, nullptr);
  EXPECT_NE(once.trial_seed, other.trial_seed);
}

TEST(Campaign, ProtectedScheduleAndExpectations) {
  campaign::CampaignOptions opt;
  opt.trials = 2;
  opt.protected_every = 2;  // trial 1 (0-based) is protected
  opt.threads = 2;
  opt.seed = 0xcafe;
  const campaign::CampaignReport report = campaign::run_campaign(opt);
  ASSERT_EQ(report.trials.size(), 2u);
  EXPECT_FALSE(report.trials[0].protected_variant);
  EXPECT_TRUE(report.trials[1].protected_variant);
  EXPECT_EQ(report.unprotected_trials, 1u);
  EXPECT_EQ(report.protected_trials, 1u);
  // Paper behaviour: unprotected key recovered, protected resists.
  EXPECT_EQ(report.unprotected_successes, 1u);
  EXPECT_EQ(report.protected_resisted, 1u);
  EXPECT_TRUE(report.all_expected());
  EXPECT_FALSE(report.trials[1].attack_success);
  EXPECT_FALSE(report.trials[1].failure.empty());

  // Aggregates tie out with the per-trial rows.
  size_t runs = 0;
  for (const auto& t : report.trials) runs += t.oracle_runs;
  EXPECT_EQ(runs, report.total_oracle_runs);

  // JSON report carries the machine-readable essentials.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"aggregate\""), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\""), std::string::npos);
  EXPECT_NE(json.find("\"trials\":["), std::string::npos);
  EXPECT_NE(json.find("\"protected\":true"), std::string::npos);
}

TEST(Campaign, ReportCarriesACanonicalMetricsBlock) {
  // The JSON report's `metrics` object is the machine-readable entry point
  // for dashboards; the historical aggregate total_* fields stay as aliases
  // and the two views must agree field for field.
  campaign::CampaignOptions opt;
  opt.trials = 2;
  opt.protected_every = 2;
  opt.threads = 2;
  opt.seed = 0xcafe;
  const campaign::CampaignReport report = campaign::run_campaign(opt);

  const auto doc = parse_json(report.to_json());
  ASSERT_TRUE(doc.has_value());
  const JsonValue* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_object());
  EXPECT_EQ(metrics->find("oracle_runs")->as_u64(), report.total_oracle_runs);
  EXPECT_EQ(metrics->find("cache_hits")->as_u64(), report.total_cache_hits);
  EXPECT_EQ(metrics->find("probe_calls")->as_u64(), report.total_probe_calls);
  EXPECT_EQ(metrics->find("physical_runs")->as_u64(), report.total_physical_runs);
  EXPECT_EQ(metrics->find("retry_runs")->as_u64(), report.total_retry_runs);
  EXPECT_EQ(metrics->find("vote_runs")->as_u64(), report.total_vote_runs);

  const JsonValue* phases = metrics->find("phase_oracle_runs");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->members.size(), report.phase_run_totals.size());
  for (const auto& [phase, runs] : report.phase_run_totals) {
    const JsonValue* v = phases->find(phase);
    ASSERT_NE(v, nullptr) << phase;
    EXPECT_EQ(v->as_u64(), runs) << phase;
  }

  // The aggregate aliases are still present for existing consumers.
  const JsonValue* aggregate = doc->find("aggregate");
  ASSERT_NE(aggregate, nullptr);
  EXPECT_EQ(aggregate->find("total_oracle_runs")->as_u64(), report.total_oracle_runs);
}

TEST(Campaign, FingerprintIsThreadCountInvariant) {
  campaign::CampaignOptions opt;
  opt.trials = 2;
  opt.protected_every = 2;  // one real attack + one cheap protected trial
  opt.seed = 0xd15ea5e;
  opt.threads = 1;
  const campaign::CampaignReport serial = campaign::run_campaign(opt);
  opt.threads = 8;
  const campaign::CampaignReport parallel = campaign::run_campaign(opt);
  EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
  EXPECT_EQ(serial.trials.size(), parallel.trials.size());
  for (size_t i = 0; i < serial.trials.size(); ++i) {
    EXPECT_EQ(serial.trials[i].oracle_runs, parallel.trials[i].oracle_runs) << "trial " << i;
    EXPECT_EQ(serial.trials[i].phase_runs, parallel.trials[i].phase_runs) << "trial " << i;
  }
}

TEST(CampaignCheckpoint, TrialOutcomeRoundTripsThroughTheCheckpointFile) {
  campaign::CampaignOptions opt;
  opt.trials = 2;
  opt.protected_every = 1;  // protected trial: cheap, fails fast
  opt.seed = 0x0ddba11;
  const campaign::TrialOutcome t = campaign::run_trial(opt, 0, nullptr);

  const std::string path = ::testing::TempDir() + "sbm_trial_roundtrip.json";
  ASSERT_TRUE(campaign::save_checkpoint(path, opt, {t}));
  const auto cp = campaign::load_checkpoint(path, opt);
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->signature, campaign::options_signature(opt));
  ASSERT_EQ(cp->completed.size(), 1u);
  const campaign::TrialOutcome& back = cp->completed[0];
  EXPECT_EQ(back.index, t.index);
  EXPECT_EQ(back.trial_seed, t.trial_seed);
  EXPECT_EQ(back.protected_variant, t.protected_variant);
  EXPECT_EQ(back.attack_success, t.attack_success);
  EXPECT_EQ(back.key_match, t.key_match);
  EXPECT_EQ(back.expected, t.expected);
  EXPECT_EQ(back.failure, t.failure);
  EXPECT_EQ(back.oracle_runs, t.oracle_runs);
  EXPECT_EQ(back.cache_hits, t.cache_hits);
  EXPECT_EQ(back.probe_calls, t.probe_calls);
  EXPECT_EQ(back.lut_sites, t.lut_sites);
  EXPECT_EQ(back.phase_runs, t.phase_runs);
  EXPECT_EQ(back.physical_runs, t.physical_runs);
  std::remove(path.c_str());
}

TEST(CampaignCheckpoint, ResumeAfterKillYieldsIdenticalFingerprint) {
  // The acceptance scenario: a campaign killed after trial k, resumed from
  // its checkpoint file, reports the same fingerprint as an uninterrupted
  // run — for 1 and for 8 worker threads.
  campaign::CampaignOptions opt;
  opt.trials = 4;
  opt.protected_every = 2;  // trials 1 and 3 are cheap protected trials
  opt.seed = 0xc4ec;
  opt.threads = 1;
  const campaign::CampaignReport reference = campaign::run_campaign(opt);
  ASSERT_TRUE(reference.all_expected());

  // The "killed" campaign completed trials 0 and 1 before dying.
  std::vector<campaign::TrialOutcome> done;
  done.push_back(campaign::run_trial(opt, 0, nullptr));
  done.push_back(campaign::run_trial(opt, 1, nullptr));

  const std::string path = ::testing::TempDir() + "sbm_campaign_resume.json";
  for (const unsigned threads : {1u, 8u}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    ASSERT_TRUE(campaign::save_checkpoint(path, opt, done));

    campaign::CampaignOptions ropt = opt;
    ropt.threads = threads;
    ropt.checkpoint_path = path;
    ropt.resume = true;
    const campaign::CampaignReport resumed = campaign::run_campaign(ropt);
    EXPECT_EQ(resumed.resumed_trials, 2u);
    EXPECT_EQ(resumed.fingerprint(), reference.fingerprint());
    EXPECT_EQ(resumed.total_oracle_runs, reference.total_oracle_runs);
    EXPECT_EQ(resumed.total_cache_hits, reference.total_cache_hits);
    EXPECT_TRUE(resumed.all_expected());

    // The rewritten checkpoint now covers the whole campaign; a second
    // resume re-runs nothing and still reports the same fingerprint.
    campaign::CampaignReport replay = campaign::run_campaign(ropt);
    EXPECT_EQ(replay.resumed_trials, opt.trials);
    EXPECT_EQ(replay.fingerprint(), reference.fingerprint());
  }
  std::remove(path.c_str());
}

TEST(CampaignCheckpoint, MismatchedSignatureIsIgnored) {
  campaign::CampaignOptions opt;
  opt.trials = 1;
  opt.protected_every = 1;  // single cheap protected trial
  opt.seed = 0x5119;
  const std::string path = ::testing::TempDir() + "sbm_campaign_mismatch.json";
  ASSERT_TRUE(campaign::save_checkpoint(path, opt, {campaign::run_trial(opt, 0, nullptr)}));

  campaign::CampaignOptions other = opt;
  other.seed = 0x5120;  // different campaign: the file must not be trusted
  other.checkpoint_path = path;
  other.resume = true;
  other.threads = 1;
  const campaign::CampaignReport report = campaign::run_campaign(other);
  EXPECT_EQ(report.resumed_trials, 0u);
  ASSERT_EQ(report.trials.size(), 1u);
  EXPECT_EQ(report.trials[0].trial_seed,
            campaign::run_trial(other, 0, nullptr).trial_seed);

  // Scheduling knobs are deliberately outside the signature: resuming under
  // a different thread count or batch width is legal.
  campaign::CampaignOptions rescheduled = opt;
  rescheduled.threads = 8;
  rescheduled.batch_width = 1;
  rescheduled.scan_parallel = false;
  EXPECT_EQ(campaign::options_signature(rescheduled), campaign::options_signature(opt));
  campaign::CampaignOptions renoised = opt;
  renoised.noise = faultsim::NoiseProfile::mild();
  EXPECT_NE(campaign::options_signature(renoised), campaign::options_signature(opt));
  std::remove(path.c_str());
}

TEST(CampaignCheckpoint, NoisyCampaignTrialKeepsLogicalMetricsAndFingerprint) {
  // One noisy trial: same victim and logical decisions as its clean twin,
  // with the physical overhead reported on the side.
  campaign::CampaignOptions clean_opt;
  clean_opt.trials = 1;
  clean_opt.seed = 0xfeedc0de;
  clean_opt.threads = 1;
  campaign::CampaignOptions noisy_opt = clean_opt;
  noisy_opt.noise = faultsim::NoiseProfile::mild();

  const campaign::CampaignReport clean = campaign::run_campaign(clean_opt);
  const campaign::CampaignReport noisy = campaign::run_campaign(noisy_opt);
  ASSERT_TRUE(clean.all_expected());
  ASSERT_TRUE(noisy.all_expected());
  ASSERT_EQ(noisy.trials.size(), 1u);
  const campaign::TrialOutcome& t = noisy.trials[0];
  EXPECT_TRUE(t.key_match);
  EXPECT_EQ(t.oracle_runs, clean.trials[0].oracle_runs);
  EXPECT_EQ(t.phase_runs, clean.trials[0].phase_runs);
  EXPECT_EQ(t.physical_runs, t.oracle_runs + t.retry_runs + t.vote_runs);
  EXPECT_GT(t.vote_runs, 0u);
  // The fingerprint digests logical fields only, so noise cannot move it.
  EXPECT_EQ(noisy.fingerprint(), clean.fingerprint());
  EXPECT_LE(t.physical_runs, 3 * clean.trials[0].probe_calls);
}

}  // namespace
}  // namespace sbm
