// Campaign subsystem tests + the runtime determinism contract on the real
// attack workloads: scan_family and the full pipeline must produce
// byte-identical results for 1 and 8 threads, and a campaign report must be
// identical (minus wall-clock) for any thread count.
#include <gtest/gtest.h>

#include "attack/pipeline.h"
#include "attack/scan.h"
#include "campaign/campaign.h"
#include "fpga/system.h"
#include "runtime/probe_cache.h"
#include "runtime/thread_pool.h"

namespace sbm {
namespace {

constexpr snow3g::Iv kHostIv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};

const fpga::System& shared_system() {
  static const fpga::System sys = fpga::build_system();
  return sys;
}

TEST(RuntimeDeterminism, ScanFamilyIsThreadCountInvariant) {
  const fpga::System& sys = shared_system();
  attack::FindLutOptions serial_opt;  // pool == nullptr
  const auto serial =
      attack::scan_family(sys.golden.bytes, attack::attack_family(), serial_opt);

  for (const unsigned threads : {1u, 8u}) {
    runtime::ThreadPool pool(threads);
    attack::FindLutOptions opt;
    opt.pool = &pool;
    opt.shard_grain = 1 << 10;  // force real sharding even on this bitstream
    const auto parallel =
        attack::scan_family(sys.golden.bytes, attack::attack_family(), opt);
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (size_t c = 0; c < serial.size(); ++c) {
      EXPECT_EQ(parallel[c].matches, serial[c].matches)
          << "candidate " << serial[c].candidate.name << ", " << threads << " threads";
    }
  }
}

TEST(RuntimeDeterminism, FindLutShardingMatchesSerial) {
  const fpga::System& sys = shared_system();
  const logic::TruthTable6 f = attack::attack_family().front().function;
  const auto serial = attack::find_lut(sys.golden.bytes, f);
  runtime::ThreadPool pool(8);
  attack::FindLutOptions opt;
  opt.pool = &pool;
  opt.shard_grain = 1;  // as many shards as the pool will take
  EXPECT_EQ(attack::find_lut(sys.golden.bytes, f, opt), serial);
}

TEST(RuntimeDeterminism, FullAttackIsThreadCountInvariant) {
  // The ISSUE's core acceptance test: Attack::execute() with 1 and with 8
  // threads (probe cache on) produces byte-identical results.
  const fpga::System& sys = shared_system();
  std::vector<attack::AttackResult> results;
  for (const unsigned threads : {1u, 8u}) {
    runtime::ThreadPool pool(threads);
    runtime::ProbeCache cache;
    attack::DeviceOracle oracle(sys, kHostIv);
    attack::PipelineConfig cfg;
    cfg.iv = kHostIv;
    cfg.find.pool = &pool;
    cfg.cache = &cache;
    attack::Attack attack(oracle, sys.golden.bytes, cfg);
    results.push_back(attack.execute());
    ASSERT_TRUE(results.back().success) << results.back().failure;
  }
  const attack::AttackResult& a = results[0];
  const attack::AttackResult& b = results[1];
  EXPECT_EQ(a.secrets.key, b.secrets.key);
  EXPECT_EQ(a.secrets.iv, b.secrets.iv);
  EXPECT_EQ(a.faulty_keystream, b.faulty_keystream);
  EXPECT_EQ(a.recovered_state, b.recovered_state);
  EXPECT_EQ(a.oracle_runs, b.oracle_runs);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.probe_calls, b.probe_calls);
  EXPECT_EQ(a.phase_runs, b.phase_runs);
  EXPECT_EQ(a.mux_patches, b.mux_patches);
  EXPECT_EQ(a.log, b.log);
  ASSERT_EQ(a.lut1.size(), b.lut1.size());
  for (size_t i = 0; i < a.lut1.size(); ++i) {
    EXPECT_EQ(a.lut1[i].match, b.lut1[i].match);
    EXPECT_EQ(a.lut1[i].bit, b.lut1[i].bit);
    EXPECT_EQ(a.lut1[i].trio, b.lut1[i].trio);
    EXPECT_EQ(a.lut1[i].s0_var, b.lut1[i].s0_var);
  }
  ASSERT_EQ(a.feedback.size(), b.feedback.size());
  for (size_t i = 0; i < a.feedback.size(); ++i) {
    EXPECT_EQ(a.feedback[i].byte_index, b.feedback[i].byte_index);
    EXPECT_EQ(a.feedback[i].half, b.feedback[i].half);
    EXPECT_EQ(a.feedback[i].zero_all, b.feedback[i].zero_all);
    EXPECT_EQ(a.feedback[i].zero_vars, b.feedback[i].zero_vars);
    EXPECT_EQ(a.feedback[i].bit, b.feedback[i].bit);
  }
  // The recovered key is the planted one, and the cache never inflates the
  // paper's cost metric: true oracle runs + hits account for every probe.
  EXPECT_EQ(a.secrets.key, sys.options.key);
  EXPECT_EQ(a.oracle_runs + a.cache_hits, a.probe_calls);
}

TEST(Campaign, TrialIsSelfContainedAndSeeded) {
  campaign::CampaignOptions opt;
  opt.trials = 1;
  opt.seed = 0x1234;
  const campaign::TrialOutcome once = campaign::run_trial(opt, 0, nullptr);
  const campaign::TrialOutcome again = campaign::run_trial(opt, 0, nullptr);
  EXPECT_EQ(once.trial_seed, again.trial_seed);
  EXPECT_EQ(once.attack_success, again.attack_success);
  EXPECT_EQ(once.oracle_runs, again.oracle_runs);
  EXPECT_EQ(once.cache_hits, again.cache_hits);
  EXPECT_TRUE(once.expected) << once.failure;
  EXPECT_TRUE(once.key_match);

  // A different trial index yields a different victim.
  const campaign::TrialOutcome other = campaign::run_trial(opt, 1, nullptr);
  EXPECT_NE(once.trial_seed, other.trial_seed);
}

TEST(Campaign, ProtectedScheduleAndExpectations) {
  campaign::CampaignOptions opt;
  opt.trials = 2;
  opt.protected_every = 2;  // trial 1 (0-based) is protected
  opt.threads = 2;
  opt.seed = 0xcafe;
  const campaign::CampaignReport report = campaign::run_campaign(opt);
  ASSERT_EQ(report.trials.size(), 2u);
  EXPECT_FALSE(report.trials[0].protected_variant);
  EXPECT_TRUE(report.trials[1].protected_variant);
  EXPECT_EQ(report.unprotected_trials, 1u);
  EXPECT_EQ(report.protected_trials, 1u);
  // Paper behaviour: unprotected key recovered, protected resists.
  EXPECT_EQ(report.unprotected_successes, 1u);
  EXPECT_EQ(report.protected_resisted, 1u);
  EXPECT_TRUE(report.all_expected());
  EXPECT_FALSE(report.trials[1].attack_success);
  EXPECT_FALSE(report.trials[1].failure.empty());

  // Aggregates tie out with the per-trial rows.
  size_t runs = 0;
  for (const auto& t : report.trials) runs += t.oracle_runs;
  EXPECT_EQ(runs, report.total_oracle_runs);

  // JSON report carries the machine-readable essentials.
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"aggregate\""), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\""), std::string::npos);
  EXPECT_NE(json.find("\"trials\":["), std::string::npos);
  EXPECT_NE(json.find("\"protected\":true"), std::string::npos);
}

TEST(Campaign, FingerprintIsThreadCountInvariant) {
  campaign::CampaignOptions opt;
  opt.trials = 2;
  opt.protected_every = 2;  // one real attack + one cheap protected trial
  opt.seed = 0xd15ea5e;
  opt.threads = 1;
  const campaign::CampaignReport serial = campaign::run_campaign(opt);
  opt.threads = 8;
  const campaign::CampaignReport parallel = campaign::run_campaign(opt);
  EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
  EXPECT_EQ(serial.trials.size(), parallel.trials.size());
  for (size_t i = 0; i < serial.trials.size(); ++i) {
    EXPECT_EQ(serial.trials[i].oracle_runs, parallel.trials[i].oracle_runs) << "trial " << i;
    EXPECT_EQ(serial.trials[i].phase_runs, parallel.trials[i].phase_runs) << "trial " << i;
  }
}

}  // namespace
}  // namespace sbm
