// One-pass multi-pattern scan engine (attack/scan_engine.h) tests:
// randomized equivalence against the per-candidate reference scans, Mark(l)
// and bucket-collision semantics, thread invariance, and index caching.
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "attack/findlut.h"
#include "attack/pipeline.h"
#include "attack/scan.h"
#include "attack/scan_engine.h"
#include "bitstream/patcher.h"
#include "common/rng.h"
#include "faultsim/faulty_oracle.h"
#include "faultsim/noise.h"
#include "fpga/system.h"
#include "runtime/probe_cache.h"
#include "runtime/retry.h"
#include "runtime/thread_pool.h"

namespace sbm::attack {
namespace {

using logic::Candidate;
using logic::TruthTable6;

std::vector<Candidate> small_family() {
  std::vector<Candidate> family;
  for (const char* name : {"f2", "f8", "f12", "f19"}) {
    family.push_back(logic::table2_candidate(name));
  }
  return family;
}

std::vector<u8> random_buffer(size_t size, u64 seed) {
  Rng rng(seed);
  std::vector<u8> bytes(size);
  for (auto& b : bytes) b = static_cast<u8>(rng.next_u64());
  return bytes;
}

void expect_same_scan(const std::vector<FamilyCount>& engine,
                      const std::vector<FamilyCount>& legacy) {
  ASSERT_EQ(engine.size(), legacy.size());
  for (size_t c = 0; c < engine.size(); ++c) {
    EXPECT_EQ(engine[c].candidate.name, legacy[c].candidate.name);
    // Full structural identity: position, table, permutation and chunk
    // order, in the same ascending-l order.
    EXPECT_EQ(engine[c].matches, legacy[c].matches) << engine[c].candidate.name;
  }
}

TEST(ScanEngine, RandomizedEquivalenceAcrossOffsetsAndOrders) {
  const auto family = small_family();
  Rng seeds(99);
  for (const size_t offset_d : {16, 101, 404}) {
    for (const bool all_orders : {false, true}) {
      FindLutOptions opt;
      opt.offset_d = offset_d;
      opt.try_all_orders = all_orders;
      for (int trial = 0; trial < 3; ++trial) {
        auto bytes = random_buffer(4096, seeds.next_u64());
        // Plant every candidate once, at varying permutations and orders.
        for (size_t i = 0; i < family.size(); ++i) {
          const auto& order = all_orders ? all_chunk_orders()[(i * 7 + trial) % 24]
                                         : bitstream::device_chunk_orders()[i % 2];
          bitstream::write_lut_init(
              bytes, 100 + i * 800, offset_d, order,
              family[i].function.permuted(logic::all_permutations6()[(i * 97 + trial) % 720])
                  .bits());
        }
        const auto engine = scan_family(bytes, family, opt);
        const auto legacy = scan_family_legacy(bytes, family, opt);
        expect_same_scan(engine, legacy);
        for (size_t c = 0; c < family.size(); ++c) {
          EXPECT_GE(engine[c].count(), 1u) << family[c].name;
          // Per-candidate view must agree with the single-candidate engine
          // scan and (on byte positions) with the literal Algorithm 1.
          EXPECT_EQ(engine[c].matches, find_lut(bytes, family[c].function, opt));
          std::set<size_t> engine_l, naive_l;
          for (const auto& m : engine[c].matches) engine_l.insert(m.byte_index);
          for (const auto& m : find_lut_naive(bytes, family[c].function, opt)) {
            naive_l.insert(m.byte_index);
          }
          EXPECT_EQ(engine_l, naive_l) << family[c].name;
        }
      }
    }
  }
}

TEST(ScanEngine, OverlappingAndAdjacentMatches) {
  // Matches whose 4-chunk windows interleave (adjacent even byte positions
  // share no bytes at stride 64, but their windows overlap), plus two
  // candidates matching the *same* bytes at one position: candidate g is
  // derived so the image f2 stores under SLICEL decodes as g under SLICEM.
  auto family = small_family();
  FindLutOptions opt;
  opt.offset_d = 64;
  std::vector<u8> bytes(2048, 0);
  const auto& slicel = bitstream::device_chunk_orders()[0];
  const auto& slicem = bitstream::device_chunk_orders()[1];
  bitstream::write_lut_init(bytes, 300, opt.offset_d, slicel, family[0].function.bits());
  bitstream::write_lut_init(bytes, 302, opt.offset_d, slicel,
                            family[1].function.permuted(logic::all_permutations6()[10]).bits());
  bitstream::write_lut_init(bytes, 600, opt.offset_d, slicel, family[2].function.bits());
  bitstream::write_lut_init(bytes, 602, opt.offset_d, slicel, family[3].function.bits());
  Candidate overlay;
  overlay.name = "overlay";
  overlay.function =
      TruthTable6(bitstream::xi_inverse(bitstream::assemble_b(bytes, 300, opt.offset_d, slicem)));
  family.push_back(overlay);

  const auto engine = scan_family(bytes, family, opt);
  const auto legacy = scan_family_legacy(bytes, family, opt);
  expect_same_scan(engine, legacy);
  std::set<size_t> found;
  for (const auto& fc : engine) {
    for (const auto& m : fc.matches) found.insert(m.byte_index);
  }
  for (const size_t l : {size_t{300}, size_t{302}, size_t{600}, size_t{602}}) {
    EXPECT_TRUE(found.count(l)) << "planted position " << l << " missing";
  }
  // The overlay candidate shares its matched bytes with f2's instance.
  std::set<size_t> overlay_l;
  for (const auto& m : engine.back().matches) overlay_l.insert(m.byte_index);
  EXPECT_TRUE(overlay_l.count(300));
}

TEST(ScanEngine, FirstChunkBucketCollision) {
  // Two candidates engineered to share sub-vector 0: g's stored image under
  // SLICEL differs from f's only in the top chunk, so both compile into the
  // same 16-bit first-chunk bucket.  The full 64-bit confirm must keep their
  // match lists separate.
  const TruthTable6 f = logic::table2_candidate("f2").function;
  const TruthTable6 g(bitstream::xi_inverse(bitstream::xi_permute(f.bits()) ^ (u64{1} << 63)));
  ASSERT_NE(f, g);
  ASSERT_EQ(bitstream::xi_permute(f.bits()) & 0xffff, bitstream::xi_permute(g.bits()) & 0xffff);

  std::vector<Candidate> family(2);
  family[0].name = "f";
  family[0].function = f;
  family[1].name = "g";
  family[1].function = g;

  FindLutOptions opt;
  opt.offset_d = 101;
  std::vector<u8> bytes(4096, 0);
  const auto& slicel = bitstream::device_chunk_orders()[0];
  bitstream::write_lut_init(bytes, 50, opt.offset_d, slicel, f.bits());
  bitstream::write_lut_init(bytes, 2000, opt.offset_d, slicel, g.bits());

  const auto engine = scan_family(bytes, family, opt);
  const auto legacy = scan_family_legacy(bytes, family, opt);
  expect_same_scan(engine, legacy);

  auto positions = [](const FamilyCount& fc) {
    std::set<size_t> out;
    for (const auto& m : fc.matches) out.insert(m.byte_index);
    return out;
  };
  EXPECT_TRUE(positions(engine[0]).count(50));
  EXPECT_FALSE(positions(engine[0]).count(2000));
  EXPECT_TRUE(positions(engine[1]).count(2000));
  EXPECT_FALSE(positions(engine[1]).count(50));
}

TEST(ScanEngine, MarkSemanticsLowestOrderWins) {
  // A function symmetric enough to match under several chunk orders at the
  // same position: the engine must report the same single (order, perm) the
  // serial order loop settles on.
  const TruthTable6 x6(0x6996966996696996ull);  // XOR of 6 vars
  std::vector<Candidate> family(1);
  family[0].name = "xor6";
  family[0].function = x6;
  FindLutOptions opt;
  opt.offset_d = 32;
  opt.try_all_orders = true;
  std::vector<u8> bytes(512, 0);
  bitstream::write_lut_init(bytes, 16, opt.offset_d, all_chunk_orders()[13], x6.bits());

  const auto engine = scan_family(bytes, family, opt);
  const auto legacy = scan_family_legacy(bytes, family, opt);
  expect_same_scan(engine, legacy);
  std::set<size_t> idx;
  for (const auto& m : engine[0].matches) {
    EXPECT_TRUE(idx.insert(m.byte_index).second) << "duplicate index " << m.byte_index;
  }
}

TEST(ScanEngine, ThreadCountInvariance) {
  // 1-thread and 8-thread scans over the pool must be bit-identical, and
  // identical to the legacy scan under both pools.
  const auto family = small_family();
  auto bytes = random_buffer(1 << 16, 1234);
  for (size_t i = 0; i < family.size(); ++i) {
    bitstream::write_lut_init(bytes, 997 * (i + 1), 404, bitstream::device_chunk_orders()[i % 2],
                              family[i].function.bits());
  }
  FindLutOptions serial_opt;
  serial_opt.offset_d = 404;
  serial_opt.shard_grain = 1 << 10;  // force real sharding on a 64 KiB buffer
  const auto serial = scan_family(bytes, family, serial_opt);

  runtime::ThreadPool pool(8);
  FindLutOptions pooled_opt = serial_opt;
  pooled_opt.pool = &pool;
  expect_same_scan(scan_family(bytes, family, pooled_opt), serial);
  expect_same_scan(scan_family_legacy(bytes, family, pooled_opt), serial);
}

TEST(ScanEngine, IndexCacheReusesCompiledIndexes) {
  const auto family = small_family();
  const auto bytes = random_buffer(2048, 5);
  FindLutOptions opt;
  opt.offset_d = 101;

  pattern_index_cache_clear();
  ASSERT_EQ(pattern_index_cache_size(), 0u);
  scan_family(bytes, family, opt);
  EXPECT_EQ(pattern_index_cache_size(), 1u);
  scan_family(bytes, family, opt);
  EXPECT_EQ(pattern_index_cache_size(), 1u) << "repeat scan must reuse the compiled index";

  // The cache key covers (function set, offset d, order set): changing any
  // of them compiles a distinct index.
  FindLutOptions other_d = opt;
  other_d.offset_d = 404;
  scan_family(bytes, family, other_d);
  EXPECT_EQ(pattern_index_cache_size(), 2u);
  FindLutOptions all_orders = opt;
  all_orders.try_all_orders = true;
  scan_family(bytes, family, all_orders);
  EXPECT_EQ(pattern_index_cache_size(), 3u);
  pattern_index_cache_clear();
  EXPECT_EQ(pattern_index_cache_size(), 0u);
}

TEST(ScanEngine, LegacyScanOptionRoutesToTheReferenceImplementation) {
  // The legacy_scan knob must dispatch scan_family to scan_family_legacy
  // verbatim — same option struct, same results — on randomized buffers.
  const auto family = small_family();
  Rng seeds(314);
  for (int trial = 0; trial < 3; ++trial) {
    auto bytes = random_buffer(8192, seeds.next_u64());
    for (size_t i = 0; i < family.size(); ++i) {
      bitstream::write_lut_init(
          bytes, 200 + i * 1500, 101, bitstream::device_chunk_orders()[i % 2],
          family[i].function.permuted(logic::all_permutations6()[(i * 41 + trial) % 720]).bits());
    }
    FindLutOptions opt;
    opt.offset_d = 101;
    FindLutOptions legacy_opt = opt;
    legacy_opt.legacy_scan = true;
    expect_same_scan(scan_family(bytes, family, legacy_opt),
                     scan_family_legacy(bytes, family, opt));
    expect_same_scan(scan_family(bytes, family, opt), scan_family(bytes, family, legacy_opt));
  }
}

// Differential test through the whole pipeline: the same fault-injected
// attack — randomized victim placement, FaultyOracle noise, voting retries —
// run once over the one-pass engine and once over the legacy per-candidate
// scan must produce identical logical AttackResults, at 1 and at 8 worker
// threads.  This pins the engine/legacy contract where it matters: inside a
// noisy end-to-end attack, not just on raw buffers.
TEST(ScanEngine, PipelineDifferentialEngineVsLegacyUnderNoise) {
  Rng rng(0xd1ff);
  fpga::SystemOptions sys_opt;
  sys_opt.key = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  sys_opt.packing.placement_seed = rng.next_u64();
  const fpga::System sys = fpga::build_system(sys_opt);
  const snow3g::Iv iv = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};

  faultsim::NoiseProfile noise = faultsim::NoiseProfile::mild();
  noise.seed = 0xfee1;

  std::optional<AttackResult> reference;
  for (const unsigned threads : {1u, 8u}) {
    runtime::ThreadPool pool(threads);
    runtime::ThreadPool* shared = threads > 1 ? &pool : nullptr;
    for (const bool legacy : {false, true}) {
      SCOPED_TRACE(::testing::Message() << "threads=" << threads << " legacy=" << legacy);
      DeviceOracle device(sys, iv, shared, 64);
      faultsim::FaultyOracle faulty(device, noise);
      runtime::ProbeCache cache;
      PipelineConfig cfg;
      cfg.iv = iv;
      cfg.cache = &cache;
      cfg.retry = runtime::RetryPolicy::voting(3);
      cfg.find.pool = shared;
      cfg.find.legacy_scan = legacy;
      Attack attack(faulty, sys.golden.bytes, cfg);
      const AttackResult res = attack.execute();

      ASSERT_TRUE(res.success) << res.failure;
      EXPECT_EQ(res.secrets.key, sys_opt.key);
      EXPECT_EQ(res.physical_runs, res.oracle_runs + res.retry_runs + res.vote_runs);
      if (!reference) {
        reference = res;
        continue;
      }
      // Logical record identical to the engine/1-thread reference run.
      EXPECT_EQ(res.oracle_runs, reference->oracle_runs);
      EXPECT_EQ(res.cache_hits, reference->cache_hits);
      EXPECT_EQ(res.probe_calls, reference->probe_calls);
      EXPECT_EQ(res.phase_runs, reference->phase_runs);
      EXPECT_EQ(res.faulty_keystream, reference->faulty_keystream);
      EXPECT_EQ(res.secrets.key, reference->secrets.key);
      EXPECT_EQ(res.secrets.iv, reference->secrets.iv);
      // The physical/noise layer is also a pure function of the probe order,
      // so even the overhead ledger matches.
      EXPECT_EQ(res.physical_runs, reference->physical_runs);
      EXPECT_EQ(res.retry_runs, reference->retry_runs);
      EXPECT_EQ(res.vote_runs, reference->vote_runs);
      EXPECT_EQ(res.corruption_detections, reference->corruption_detections);
      EXPECT_EQ(res.transient_rejections, reference->transient_rejections);
    }
  }
}

TEST(ScanEngine, EmptyTinyAndDegenerateInputs) {
  const auto family = small_family();
  FindLutOptions opt;
  EXPECT_EQ(scan_family({}, family, opt).size(), family.size());
  for (const auto& fc : scan_family({}, family, opt)) EXPECT_EQ(fc.count(), 0u);
  const std::vector<u8> tiny(8, 0xff);
  for (const auto& fc : scan_family(tiny, family, opt)) EXPECT_EQ(fc.count(), 0u);
  // Empty family: a scan with nothing compiled must still be well-formed.
  EXPECT_TRUE(scan_family(random_buffer(1024, 3), {}, opt).empty());
}

}  // namespace
}  // namespace sbm::attack
