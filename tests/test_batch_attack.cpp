// Batch-oracle invariance: the full Section VI attack, the campaign
// fingerprint and raw run_batch calls must produce results bit-identical to
// the scalar reference path for every batch width and thread count — the
// 64-lane bit-sliced backend is a pure wall-clock optimization, never a
// behavioral one.  Cost accounting must stay intact: every lane is one
// paper-cost reconfiguration, and probe_calls = oracle_runs + cache_hits.
#include <gtest/gtest.h>

#include "attack/pipeline.h"
#include "bitstream/patcher.h"
#include "campaign/campaign.h"
#include "common/rng.h"
#include "fpga/system.h"
#include "runtime/probe_cache.h"
#include "runtime/thread_pool.h"

namespace sbm {
namespace {

constexpr snow3g::Iv kHostIv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};

const fpga::System& shared_system() {
  static const fpga::System sys = fpga::build_system();
  return sys;
}

attack::AttackResult run_attack(unsigned batch_width, runtime::ThreadPool* pool) {
  const fpga::System& sys = shared_system();
  attack::DeviceOracle oracle(sys, kHostIv, pool, batch_width);
  runtime::ProbeCache cache;
  attack::PipelineConfig cfg;
  cfg.iv = kHostIv;
  cfg.cache = &cache;
  cfg.find.pool = pool;
  attack::Attack attack(oracle, sys.golden.bytes, cfg);
  return attack.execute();
}

TEST(BatchAttack, FullAttackInvariantAcrossWidthsAndThreads) {
  const attack::AttackResult ref = run_attack(/*batch_width=*/1, /*pool=*/nullptr);
  ASSERT_TRUE(ref.success) << ref.failure;
  ASSERT_TRUE(ref.key_confirmed);
  EXPECT_EQ(ref.probe_calls, ref.oracle_runs + ref.cache_hits);

  runtime::ThreadPool pool(8);
  struct Config {
    unsigned width;
    runtime::ThreadPool* pool;
  };
  // Widths beyond 64 engage the wide SIMD backends when compiled in; the
  // oracle clamps them to the active backend's lane count, and the results
  // must stay bit-identical either way.
  const Config configs[] = {{7, nullptr}, {7, &pool}, {64, nullptr}, {64, &pool},
                            {256, &pool}, {512, nullptr}, {512, &pool}};
  for (const Config& c : configs) {
    SCOPED_TRACE("width " + std::to_string(c.width) + (c.pool ? ", 8 threads" : ", serial"));
    const attack::AttackResult res = run_attack(c.width, c.pool);
    ASSERT_TRUE(res.success) << res.failure;
    EXPECT_EQ(res.faulty_keystream, ref.faulty_keystream);
    EXPECT_EQ(res.secrets.key, ref.secrets.key);
    EXPECT_EQ(res.secrets.iv, ref.secrets.iv);
    EXPECT_EQ(res.recovered_state, ref.recovered_state);
    EXPECT_EQ(res.oracle_runs, ref.oracle_runs);
    EXPECT_EQ(res.cache_hits, ref.cache_hits);
    EXPECT_EQ(res.probe_calls, ref.probe_calls);
    EXPECT_EQ(res.phase_runs, ref.phase_runs);
    EXPECT_EQ(res.log, ref.log);
    EXPECT_EQ(res.feedback.size(), ref.feedback.size());
    EXPECT_EQ(res.lut1.size(), ref.lut1.size());
    EXPECT_EQ(res.probe_calls, res.oracle_runs + res.cache_hits);
  }
}

TEST(BatchAttack, CampaignFingerprintInvariantAcrossWidthsAndThreads) {
  campaign::CampaignOptions opt;
  opt.trials = 2;
  opt.seed = 0xfeedba7c;
  opt.threads = 1;
  opt.batch_width = 1;
  const campaign::CampaignReport ref = campaign::run_campaign(opt);
  ASSERT_TRUE(ref.all_expected());

  struct Config {
    unsigned width;
    unsigned threads;
  };
  for (const Config c : {Config{7, 8}, Config{64, 1}, Config{64, 8}, Config{512, 8}}) {
    SCOPED_TRACE("width " + std::to_string(c.width) + ", " + std::to_string(c.threads) +
                 " threads");
    campaign::CampaignOptions vopt = opt;
    vopt.batch_width = c.width;
    vopt.threads = c.threads;
    const campaign::CampaignReport rep = campaign::run_campaign(vopt);
    EXPECT_EQ(rep.fingerprint(), ref.fingerprint());
    EXPECT_EQ(rep.total_oracle_runs, ref.total_oracle_runs);
    EXPECT_EQ(rep.total_cache_hits, ref.total_cache_hits);
  }
}

TEST(BatchOracle, RunBatchMatchesScalarRunsOnRaggedBatches) {
  const fpga::System& sys = shared_system();
  Rng rng(0xba7c41);
  std::vector<u8> nocrc = sys.golden.bytes;
  bitstream::disable_crc(nocrc);
  auto make_probe = [&](size_t i) {
    if (i % 13 == 5) {  // sprinkle rejected candidates through the batch
      std::vector<u8> bad = sys.golden.bytes;
      bad[sys.golden.layout.fdri_byte_offset + i] ^= 0x5a;
      return bad;
    }
    std::vector<u8> bytes = nocrc;
    const size_t site = rng.next_u64() % sys.placed.phys.size();
    bitstream::write_lut_init(bytes, sys.golden.layout.site_byte_index(site),
                              bitstream::Layout::chunk_stride(),
                              bitstream::chunk_order(sys.placed.slice_of(site)),
                              rng.next_u64());
    return bytes;
  };

  runtime::ThreadPool pool(8);
  // 7 = one ragged chunk; 65 = one full chunk + a single-lane (scalar) tail.
  for (const size_t n : {size_t{7}, size_t{65}}) {
    SCOPED_TRACE(std::to_string(n) + " probes");
    std::vector<std::vector<u8>> probes;
    for (size_t i = 0; i < n; ++i) probes.push_back(make_probe(i));

    attack::DeviceOracle batched(sys, kHostIv, &pool, 64);
    const auto batch_results = batched.run_batch(probes, 4);
    EXPECT_EQ(batched.runs(), n);  // every lane is one reconfiguration

    attack::DeviceOracle scalar(sys, kHostIv, nullptr, 1);
    ASSERT_EQ(batch_results.size(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(batch_results[i], scalar.run(probes[i], 4)) << "probe " << i;
    }
    EXPECT_EQ(scalar.runs(), n);
  }
}

TEST(BatchOracle, BaseClassDefaultLoopsOverRun) {
  // A non-device oracle (no snapshot, no batch override) must still answer
  // run_batch through the default serial loop.
  class CountingOracle : public attack::Oracle {
   public:
    runtime::ProbeOutcome run(std::span<const u8> bitstream, size_t words) override {
      ++runs_;
      return std::vector<u32>(words, static_cast<u32>(bitstream.size()));
    }
  };
  CountingOracle oracle;
  const std::vector<std::vector<u8>> probes = {{1}, {2, 2}, {3, 3, 3}};
  const auto results = oracle.run_batch(probes, 2);
  ASSERT_EQ(results.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(results[i].has_value());
    EXPECT_EQ(*results[i], std::vector<u32>(2, static_cast<u32>(i + 1)));
  }
  EXPECT_EQ(oracle.runs(), 3u);
}

}  // namespace
}  // namespace sbm
