// SIMD backend layer: runtime dispatch rules, lane-vector algebra, the
// bit-matrix transpose used by the wide BRAM path, the flat-map layout of
// the hot lookup structures, and — the load-bearing contract — bit-exact
// equivalence of the AVX2/AVX-512 wide simulators with the portable scalar
// u64 reference, from raw lane differentials up through DeviceOracle
// batches, the full Section VI attack and the campaign fingerprint.
//
// Only LaneVec<2> (128-bit, baseline SSE2 on x86-64) is instantiated here:
// the 256/512-lane vectors are ODR-used exclusively inside the kernel TUs
// carrying the matching -m flags, and this test reaches them through the
// type-erased simd::make_wide_* factories like every other client.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "attack/pipeline.h"
#include "bitstream/patcher.h"
#include "campaign/campaign.h"
#include "common/flat_map.h"
#include "common/rng.h"
#include "fpga/device.h"
#include "fpga/system.h"
#include "mapper/batch_lut_sim.h"
#include "netlist/batch_sim.h"
#include "runtime/probe_cache.h"
#include "runtime/thread_pool.h"
#include "simd/backend.h"
#include "simd/lane_vec.h"
#include "simd/transpose.h"
#include "simd/wide.h"

namespace sbm {
namespace {

using simd::Backend;

constexpr snow3g::Iv kHostIv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};

const fpga::System& shared_system() {
  static const fpga::System sys = fpga::build_system();
  return sys;
}

/// Wide backends this binary can actually run (compiled in AND supported by
/// the host).  Empty on non-x86 or SBM_SIMD=OFF builds — the wide
/// equivalence tests then pass vacuously, which is the intended degradation.
std::vector<Backend> usable_wide_backends() {
  std::vector<Backend> out;
  for (const Backend b : {Backend::kAvx2, Backend::kAvx512}) {
    if (simd::compiled(b) && simd::host_supports(b)) out.push_back(b);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Dispatch rules

TEST(SimdDispatch, BackendLanes) {
  EXPECT_EQ(simd::backend_lanes(Backend::kScalar), 64u);
  EXPECT_EQ(simd::backend_lanes(Backend::kAvx2), 256u);
  EXPECT_EQ(simd::backend_lanes(Backend::kAvx512), 512u);
  EXPECT_EQ(simd::kMaxLanes, 512u);
}

TEST(SimdDispatch, ParseBackendNames) {
  EXPECT_EQ(simd::parse_backend("scalar"), Backend::kScalar);
  EXPECT_EQ(simd::parse_backend("u64"), Backend::kScalar);
  EXPECT_EQ(simd::parse_backend("avx2"), Backend::kAvx2);
  EXPECT_EQ(simd::parse_backend("avx512"), Backend::kAvx512);
  EXPECT_EQ(simd::parse_backend("neon"), std::nullopt);
  EXPECT_EQ(simd::parse_backend(""), std::nullopt);
}

TEST(SimdDispatch, ResolveBackendTruthTable) {
  // The pure fallback rule: widest usable backend at or below the request,
  // bottoming out at scalar, which is unconditionally usable.
  for (const bool avx2 : {false, true}) {
    for (const bool avx512 : {false, true}) {
      EXPECT_EQ(simd::resolve_backend(Backend::kScalar, avx2, avx512), Backend::kScalar);
      EXPECT_EQ(simd::resolve_backend(Backend::kAvx2, avx2, avx512),
                avx2 ? Backend::kAvx2 : Backend::kScalar);
    }
  }
  EXPECT_EQ(simd::resolve_backend(Backend::kAvx512, false, false), Backend::kScalar);
  EXPECT_EQ(simd::resolve_backend(Backend::kAvx512, true, false), Backend::kAvx2);
  EXPECT_EQ(simd::resolve_backend(Backend::kAvx512, false, true), Backend::kAvx512);
  EXPECT_EQ(simd::resolve_backend(Backend::kAvx512, true, true), Backend::kAvx512);
}

TEST(SimdDispatch, BestFitBackendNeverWidensAndCoversSmallChunks) {
  for (const Backend active : {Backend::kScalar, Backend::kAvx2, Backend::kAvx512}) {
    // Chunks a single u64 word can hold always take the scalar device.
    for (const unsigned lanes : {1u, 7u, 63u, 64u}) {
      EXPECT_EQ(simd::best_fit_backend(lanes, active), Backend::kScalar)
          << lanes << " lanes, active " << simd::backend_name(active);
    }
    // Full-width chunks always keep the active backend.
    EXPECT_EQ(simd::best_fit_backend(simd::backend_lanes(active), active), active);
  }
  // Mid-size chunks under an AVX-512 active backend drop to AVX2 when its
  // kernels are available; otherwise they stay on the active backend.
  const Backend mid = simd::best_fit_backend(100, Backend::kAvx512);
  if (simd::compiled(Backend::kAvx2) && simd::host_supports(Backend::kAvx2)) {
    EXPECT_EQ(mid, Backend::kAvx2);
  } else {
    EXPECT_EQ(mid, Backend::kAvx512);
  }
  EXPECT_EQ(simd::best_fit_backend(300, Backend::kAvx512), Backend::kAvx512);
  EXPECT_EQ(simd::best_fit_backend(100, Backend::kAvx2), Backend::kAvx2);
}

TEST(SimdDispatch, SetActiveBackendFallsBackToUsable) {
  simd::ScopedBackend outer(simd::active_backend());  // restore on exit
  for (const Backend req : {Backend::kScalar, Backend::kAvx2, Backend::kAvx512}) {
    const Backend got = simd::set_active_backend(req);
    EXPECT_LE(simd::backend_lanes(got), simd::backend_lanes(req));
    EXPECT_TRUE(simd::compiled(got) && simd::host_supports(got));
    EXPECT_EQ(simd::active_backend(), got);
  }
  EXPECT_EQ(simd::set_active_backend(Backend::kScalar), Backend::kScalar);
}

TEST(SimdDispatch, ScopedBackendRestores) {
  const Backend before = simd::active_backend();
  {
    simd::ScopedBackend scoped(Backend::kScalar);
    EXPECT_EQ(scoped.actual(), Backend::kScalar);
    EXPECT_EQ(simd::active_backend(), Backend::kScalar);
  }
  EXPECT_EQ(simd::active_backend(), before);
}

TEST(SimdDispatch, WideFactoriesDeclineScalarBackend) {
  const fpga::System& sys = shared_system();
  EXPECT_EQ(simd::make_wide_device(sys, Backend::kScalar), nullptr);
  EXPECT_EQ(simd::make_wide_net_sim(sys.design.net, Backend::kScalar), nullptr);
  EXPECT_EQ(simd::make_wide_lut_sim(sys.snapshot->tape, Backend::kScalar), nullptr);
}

// ---------------------------------------------------------------------------
// Lane-vector algebra (LaneVec<2> only — see the header comment)

using LV2 = simd::LaneVec<2>;
using T2 = simd::lane_traits<LV2>;

LV2 make_lv2(u64 w0, u64 w1) {
  LV2 v = simd::zero<LV2>();
  T2::word(v, 0) = w0;
  T2::word(v, 1) = w1;
  return v;
}

TEST(SimdLaneVec, ZeroOnesBroadcast) {
  EXPECT_EQ(T2::word(simd::zero<LV2>(), 0), 0u);
  EXPECT_EQ(T2::word(simd::zero<LV2>(), 1), 0u);
  EXPECT_EQ(T2::word(simd::ones<LV2>(), 0), ~u64{0});
  EXPECT_EQ(T2::word(simd::ones<LV2>(), 1), ~u64{0});
  const LV2 b = simd::broadcast_word<LV2>(0x0123456789abcdefull);
  EXPECT_EQ(T2::word(b, 0), 0x0123456789abcdefull);
  EXPECT_EQ(T2::word(b, 1), 0x0123456789abcdefull);
}

TEST(SimdLaneVec, BitwiseOpsMatchPerWordU64) {
  Rng rng(0x1a2e);
  for (int i = 0; i < 200; ++i) {
    const u64 a0 = rng.next_u64(), a1 = rng.next_u64();
    const u64 b0 = rng.next_u64(), b1 = rng.next_u64();
    const u64 x0 = rng.next_u64(), x1 = rng.next_u64();
    const LV2 a = make_lv2(a0, a1), b = make_lv2(b0, b1), x = make_lv2(x0, x1);
    EXPECT_EQ(T2::word(a & b, 0), a0 & b0);
    EXPECT_EQ(T2::word(a & b, 1), a1 & b1);
    EXPECT_EQ(T2::word(a | b, 0), a0 | b0);
    EXPECT_EQ(T2::word(a | b, 1), a1 | b1);
    EXPECT_EQ(T2::word(a ^ b, 0), a0 ^ b0);
    EXPECT_EQ(T2::word(a ^ b, 1), a1 ^ b1);
    EXPECT_EQ(T2::word(~a, 0), ~a0);
    EXPECT_EQ(T2::word(~a, 1), ~a1);
    // mux picks b where x is set — the scalar u64 overload is the spec.
    EXPECT_EQ(T2::word(simd::mux(a, b, x), 0), simd::mux(a0, b0, x0));
    EXPECT_EQ(T2::word(simd::mux(a, b, x), 1), simd::mux(a1, b1, x1));
    // mux_word broadcasts two shared table words across the selector lanes.
    EXPECT_EQ(T2::word(simd::mux_word(a0, b0, x), 0), simd::mux(a0, b0, x0));
    EXPECT_EQ(T2::word(simd::mux_word(a0, b0, x), 1), simd::mux(a0, b0, x1));
  }
}

TEST(SimdLaneVec, LaneAccessors) {
  LV2 v = simd::zero<LV2>();
  simd::set_lane(v, 0, true);
  simd::set_lane(v, 70, true);
  EXPECT_TRUE(simd::get_lane(v, 0));
  EXPECT_TRUE(simd::get_lane(v, 70));
  EXPECT_FALSE(simd::get_lane(v, 1));
  EXPECT_FALSE(simd::get_lane(v, 69));
  simd::set_lane(v, 70, false);
  EXPECT_FALSE(simd::get_lane(v, 70));
  simd::or_lane(v, 127);
  EXPECT_TRUE(simd::get_lane(v, 127));
}

// ---------------------------------------------------------------------------
// Bit-matrix transpose (wide BRAM address gather/scatter)

TEST(SimdTranspose, Transpose32MatchesNaive) {
  Rng rng(0x7a05);
  for (int trial = 0; trial < 50; ++trial) {
    u32 a[32];
    for (u32& w : a) w = static_cast<u32>(rng.next_u64());
    u32 t[32];
    std::copy(std::begin(a), std::end(a), std::begin(t));
    simd::transpose32(t);
    for (unsigned i = 0; i < 32; ++i) {
      for (unsigned j = 0; j < 32; ++j) {
        EXPECT_EQ((t[i] >> j) & 1, (a[j] >> i) & 1) << "bit (" << i << "," << j << ")";
      }
    }
    // Transposing is an involution.
    simd::transpose32(t);
    for (unsigned i = 0; i < 32; ++i) EXPECT_EQ(t[i], a[i]);
  }
}

TEST(SimdTranspose, GatherScatterRoundTripAndNaive) {
  Rng rng(0x6a7e);
  for (int trial = 0; trial < 50; ++trial) {
    u64 in[32];
    for (u64& w : in) w = rng.next_u64();
    u32 addr[64];
    simd::gather_addresses(in, addr);
    // addr[lane] bit b == input vector b's bit for that lane.
    for (unsigned lane = 0; lane < 64; ++lane) {
      u32 expect = 0;
      for (unsigned b = 0; b < 32; ++b) expect |= static_cast<u32>((in[b] >> lane) & 1) << b;
      EXPECT_EQ(addr[lane], expect) << "lane " << lane;
    }
    u64 out[32];
    simd::scatter_outputs(addr, out);
    for (unsigned b = 0; b < 32; ++b) EXPECT_EQ(out[b], in[b]) << "vector " << b;
  }
}

// ---------------------------------------------------------------------------
// Flat-map layout

TEST(FlatMap, MatchesUnorderedMapOnRandomWorkload) {
  Rng rng(0xf1a7);
  FlatMap<u64, u32, U64MixHash> map;
  std::unordered_map<u64, u32> ref;
  for (int op = 0; op < 20000; ++op) {
    const u64 key = rng.next_u64() % 4096;  // force plenty of repeats
    if (rng.next_u64() % 2 == 0) {
      const u32 value = static_cast<u32>(rng.next_u64());
      const auto [slot, inserted] = map.try_emplace(key, value);
      const auto [it, ref_inserted] = ref.try_emplace(key, value);
      ASSERT_EQ(inserted, ref_inserted);
      ASSERT_EQ(*slot, it->second);
    } else {
      const u32* found = map.find(key);
      const auto it = ref.find(key);
      ASSERT_EQ(found != nullptr, it != ref.end());
      if (found != nullptr) {
        ASSERT_EQ(*found, it->second);
      }
    }
  }
  EXPECT_EQ(map.size(), ref.size());
  size_t visited = 0;
  map.for_each([&](u64 key, u32 value) {
    ++visited;
    const auto it = ref.find(key);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(value, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatMap, ClearKeepsWorkingAndEmptyFindIsSafe) {
  FlatMap<u64, u32, U64MixHash> map;
  EXPECT_EQ(map.find(42), nullptr);  // no table allocated yet
  for (u64 k = 0; k < 100; ++k) map.try_emplace(k, static_cast<u32>(k));
  EXPECT_EQ(map.size(), 100u);
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(5), nullptr);
  for (u64 k = 50; k < 80; ++k) map.try_emplace(k, static_cast<u32>(k * 3));
  EXPECT_EQ(map.size(), 30u);
  ASSERT_NE(map.find(60), nullptr);
  EXPECT_EQ(*map.find(60), 180u);
  EXPECT_EQ(map.find(10), nullptr);
}

TEST(FlatMap, SurvivesDegenerateHash) {
  // Everything lands in one bucket: linear probing must still find each key.
  struct OneBucket {
    size_t operator()(u64) const { return 7; }
  };
  FlatMap<u64, u64, OneBucket> map;
  for (u64 k = 0; k < 200; ++k) map.try_emplace(k, k + 1);
  for (u64 k = 0; k < 200; ++k) {
    ASSERT_NE(map.find(k), nullptr) << k;
    EXPECT_EQ(*map.find(k), k + 1);
  }
  EXPECT_EQ(map.find(777), nullptr);
}

TEST(ProbeCacheFlatMap, AccountingParityAgainstReferenceMap) {
  // Randomized lookup/store traffic mirroring the pipeline (lookup, then
  // store on miss), checked step by step against an unordered_map driven
  // with the very same KeyHash.  Hits, misses, entries and every returned
  // value must agree exactly — the cache-hit accounting feeds the paper's
  // cost metric, so "roughly right" is not acceptable.
  Rng rng(0xcac4e);
  runtime::ProbeCache cache(/*shards=*/4);
  std::unordered_map<runtime::ProbeKey, runtime::ProbeResult, runtime::ProbeCache::KeyHash> ref;
  size_t expect_hits = 0, expect_misses = 0;
  for (int op = 0; op < 5000; ++op) {
    std::vector<u8> bytes((rng.next_u64() % 96) + 1);
    // Small alphabet + small sizes: plenty of repeat probes, like replayed
    // verification patches.
    for (u8& b : bytes) b = static_cast<u8>(rng.next_u64() % 4);
    const size_t words = 1 + rng.next_u64() % 3;
    const runtime::ProbeKey key = runtime::make_probe_key(bytes, words);

    const auto cached = cache.lookup(key);
    const auto it = ref.find(key);
    if (it == ref.end()) {
      ++expect_misses;
      ASSERT_FALSE(cached.has_value());
      runtime::ProbeResult result;
      if (rng.next_u64() % 5 != 0) {  // cache rejections too
        result = std::vector<u32>(words, static_cast<u32>(rng.next_u64()));
      }
      cache.store(key, result);
      ref.emplace(key, std::move(result));
    } else {
      ++expect_hits;
      ASSERT_TRUE(cached.has_value());
      ASSERT_EQ(*cached, it->second);
    }
    ASSERT_EQ(cache.hits(), expect_hits);
    ASSERT_EQ(cache.misses(), expect_misses);
  }
  EXPECT_EQ(cache.entries(), ref.size());
  EXPECT_GT(expect_hits, 0u);

  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

// ---------------------------------------------------------------------------
// Wide-simulator differentials against the scalar u64 reference

struct LaneVector {
  snow3g::Key key{};
  snow3g::Iv iv{};
  size_t lut = 0;  // mapped-LUT index whose table this lane overrides
  u64 bits = 0;    // override function bits
};

std::vector<LaneVector> random_lanes(Rng& rng, size_t count, size_t lut_count) {
  std::vector<LaneVector> lanes(count);
  for (LaneVector& l : lanes) {
    l.key = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
    l.iv = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
    l.lut = rng.next_u64() % lut_count;
    l.bits = rng.next_u64();
  }
  return lanes;
}

/// Drives one keystream transaction on any batch simulator exposing the
/// common lane API (BatchLutSimulator, BatchSimulator, WideLutSim,
/// WideNetSim) and returns `words` z-words per lane.
template <typename Sim>
std::vector<std::vector<u32>> drive_lanes(const fpga::System& sys, Sim& sim,
                                          std::span<const LaneVector> lanes, size_t words) {
  for (size_t i = 0; i < 4; ++i) {
    for (size_t l = 0; l < lanes.size(); ++l) {
      sim.set_input_word_lane(sys.design.key[i], static_cast<unsigned>(l), lanes[l].key[i]);
      sim.set_input_word_lane(sys.design.iv[i], static_cast<unsigned>(l), lanes[l].iv[i]);
    }
  }
  auto drive = [&](bool load, bool init, bool gen) {
    sim.set_input(sys.design.load, load);
    sim.set_input(sys.design.init, init);
    sim.set_input(sys.design.gen, gen);
  };
  drive(false, false, false);
  sim.step();
  drive(true, false, false);
  sim.step();
  for (int round = 0; round < 32; ++round) {
    drive(false, true, false);
    sim.step();
  }
  drive(false, false, true);
  sim.step();
  std::vector<std::vector<u32>> z(lanes.size());
  for (size_t t = 0; t < words; ++t) {
    drive(false, false, true);
    sim.settle();
    for (size_t l = 0; l < lanes.size(); ++l) {
      z[l].push_back(sim.read_word_lane(sys.design.z, static_cast<unsigned>(l)));
    }
    sim.clock();
  }
  return z;
}

/// Reference outputs via the equivalence-tested u64 BatchLutSimulator,
/// 64 lanes at a time.
std::vector<std::vector<u32>> u64_lut_reference(const fpga::System& sys,
                                                std::span<const LaneVector> lanes,
                                                size_t words) {
  std::vector<std::vector<u32>> out;
  for (size_t base = 0; base < lanes.size(); base += 64) {
    const auto chunk = lanes.subspan(base, std::min<size_t>(64, lanes.size() - base));
    mapper::BatchLutSimulator sim(sys.snapshot->tape);
    sim.set_tables(std::span<const u64>(sys.snapshot->golden_tables));
    for (size_t l = 0; l < chunk.size(); ++l) {
      sim.set_lut_table(chunk[l].lut, static_cast<unsigned>(l), chunk[l].bits);
    }
    auto z = drive_lanes(sys, sim, chunk, words);
    out.insert(out.end(), z.begin(), z.end());
  }
  return out;
}

TEST(SimdWideEquivalence, LutSimMatchesU64ReferenceOnTenThousandVectors) {
  const fpga::System& sys = shared_system();
  const size_t lut_count = sys.snapshot->golden_luts.luts.size();
  for (const Backend backend : usable_wide_backends()) {
    SCOPED_TRACE(simd::backend_name(backend));
    const unsigned width = simd::backend_lanes(backend);
    Rng rng(0x10c0 + static_cast<u64>(backend));
    size_t vectors = 0;
    while (vectors < 10000) {
      const auto lanes = random_lanes(rng, width, lut_count);
      auto wide = simd::make_wide_lut_sim(sys.snapshot->tape, backend);
      ASSERT_NE(wide, nullptr);
      ASSERT_EQ(wide->lanes(), width);
      wide->set_tables(sys.snapshot->golden_tables);
      for (size_t l = 0; l < lanes.size(); ++l) {
        wide->set_lut_table(lanes[l].lut, static_cast<unsigned>(l), lanes[l].bits);
      }
      const auto got = drive_lanes(sys, *wide, lanes, /*words=*/2);
      const auto expect = u64_lut_reference(sys, lanes, /*words=*/2);
      for (size_t l = 0; l < lanes.size(); ++l) {
        ASSERT_EQ(got[l], expect[l]) << "lane " << l << " of " << width;
      }
      vectors += width;
    }
  }
}

TEST(SimdWideEquivalence, NetSimMatchesU64Reference) {
  const fpga::System& sys = shared_system();
  for (const Backend backend : usable_wide_backends()) {
    SCOPED_TRACE(simd::backend_name(backend));
    const unsigned width = simd::backend_lanes(backend);
    Rng rng(0x2e75 + static_cast<u64>(backend));
    // No LUT overrides here: the gate-level netlist exercises the BRAM
    // transpose path and the raw op kernels.
    auto lanes = random_lanes(rng, width, /*lut_count=*/1);
    auto wide = simd::make_wide_net_sim(sys.design.net, backend);
    ASSERT_NE(wide, nullptr);
    const auto got = drive_lanes(sys, *wide, lanes, /*words=*/3);
    std::vector<std::vector<u32>> expect;
    for (size_t base = 0; base < lanes.size(); base += 64) {
      const auto chunk =
          std::span<const LaneVector>(lanes).subspan(base, std::min<size_t>(64, width - base));
      netlist::BatchSimulator sim(sys.design.net);
      auto z = drive_lanes(sys, sim, chunk, /*words=*/3);
      expect.insert(expect.end(), z.begin(), z.end());
    }
    for (size_t l = 0; l < lanes.size(); ++l) {
      ASSERT_EQ(got[l], expect[l]) << "lane " << l;
    }
  }
}

TEST(SimdWideEquivalence, WideDeviceMatchesScalarDeviceIncludingRejections) {
  const fpga::System& sys = shared_system();
  for (const Backend backend : usable_wide_backends()) {
    SCOPED_TRACE(simd::backend_name(backend));
    const unsigned width = simd::backend_lanes(backend);
    Rng rng(0xd331 + static_cast<u64>(backend));
    std::vector<u8> nocrc = sys.golden.bytes;
    bitstream::disable_crc(nocrc);
    std::vector<std::vector<u8>> candidates;
    for (unsigned i = 0; i < width; ++i) {
      if (i % 17 == 3) {  // frame edit under an armed CRC: must reject
        std::vector<u8> bad = sys.golden.bytes;
        bad[sys.golden.layout.fdri_byte_offset + (i % 7)] ^= 0x5a;
        candidates.push_back(std::move(bad));
      } else if (i % 17 == 9) {
        candidates.push_back(sys.golden.bytes);  // pristine golden
      } else {
        std::vector<u8> bytes = nocrc;
        const size_t site = rng.next_u64() % sys.placed.phys.size();
        bitstream::write_lut_init(bytes, sys.golden.layout.site_byte_index(site),
                                  bitstream::Layout::chunk_stride(),
                                  bitstream::chunk_order(sys.placed.slice_of(site)),
                                  rng.next_u64());
        candidates.push_back(std::move(bytes));
      }
    }
    auto dev = simd::make_wide_device(sys, backend);
    ASSERT_NE(dev, nullptr);
    ASSERT_EQ(dev->lanes(), width);
    std::vector<bool> accepted;
    for (unsigned l = 0; l < width; ++l) {
      accepted.push_back(dev->configure_lane(l, candidates[l]));
    }
    const auto z = dev->keystream(kHostIv, /*n=*/4, width);
    ASSERT_EQ(z.size(), width);
    for (unsigned l = 0; l < width; ++l) {
      fpga::Device scalar = sys.make_device();
      const bool ok = scalar.configure(candidates[l]);
      ASSERT_EQ(accepted[l], ok) << "lane " << l;
      if (ok) {
        ASSERT_TRUE(z[l].has_value()) << "lane " << l;
        EXPECT_EQ(*z[l], scalar.keystream(kHostIv, 4)) << "lane " << l;
      } else {
        EXPECT_FALSE(z[l].has_value()) << "lane " << l;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Oracle batches: ragged widths, every backend, exact run accounting

TEST(SimdOracle, RaggedWidthsBitIdenticalAcrossBackends) {
  const fpga::System& sys = shared_system();
  Rng rng(0x0dd5);
  std::vector<u8> nocrc = sys.golden.bytes;
  bitstream::disable_crc(nocrc);
  constexpr size_t kProbes = 515;  // one full 512 chunk + a 3-lane tail
  std::vector<std::vector<u8>> probes;
  probes.reserve(kProbes);
  for (size_t i = 0; i < kProbes; ++i) {
    if (i % 13 == 5) {  // sprinkle rejected candidates through the batch
      std::vector<u8> bad = sys.golden.bytes;
      bad[sys.golden.layout.fdri_byte_offset + (i % 11)] ^= 0x5a;
      probes.push_back(std::move(bad));
    } else {
      std::vector<u8> bytes = nocrc;
      const size_t site = rng.next_u64() % sys.placed.phys.size();
      bitstream::write_lut_init(bytes, sys.golden.layout.site_byte_index(site),
                                bitstream::Layout::chunk_stride(),
                                bitstream::chunk_order(sys.placed.slice_of(site)),
                                rng.next_u64());
      probes.push_back(std::move(bytes));
    }
  }

  // Reference: the scalar u64 backend at its native width (itself proven
  // against one-at-a-time runs by test_batch_attack).
  std::vector<runtime::ProbeOutcome> ref;
  {
    simd::ScopedBackend scoped(Backend::kScalar);
    attack::DeviceOracle oracle(sys, kHostIv, nullptr, 64);
    ref = oracle.run_batch(probes, /*words=*/4);
    EXPECT_EQ(oracle.runs(), kProbes);
  }

  std::vector<Backend> backends = {Backend::kScalar};
  for (const Backend b : usable_wide_backends()) backends.push_back(b);
  for (const Backend backend : backends) {
    for (const unsigned width : {1u, 7u, 63u, 64u, 65u, 255u, 256u, 511u, 512u}) {
      // Every width gets full and ragged chunks: n = width + 3 (clamped).
      const size_t n = std::min<size_t>(kProbes, width + 3);
      SCOPED_TRACE(std::string(simd::backend_name(backend)) + ", width " +
                   std::to_string(width) + ", " + std::to_string(n) + " probes");
      simd::ScopedBackend scoped(backend);
      attack::DeviceOracle oracle(sys, kHostIv, nullptr, width);
      const auto got =
          oracle.run_batch(std::span<const std::vector<u8>>(probes).first(n), /*words=*/4);
      ASSERT_EQ(got.size(), n);
      EXPECT_EQ(oracle.runs(), n);  // every lane is one paper-cost reconfiguration
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], ref[i]) << "probe " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Full attack and campaign invariance across backends and thread counts

attack::AttackResult run_attack(runtime::ThreadPool* pool) {
  const fpga::System& sys = shared_system();
  attack::DeviceOracle oracle(sys, kHostIv, pool);
  runtime::ProbeCache cache;
  attack::PipelineConfig cfg;
  cfg.iv = kHostIv;
  cfg.cache = &cache;
  cfg.find.pool = pool;
  attack::Attack attack(oracle, sys.golden.bytes, cfg);
  return attack.execute();
}

TEST(SimdAttack, FullAttackInvariantAcrossBackendsAndThreads) {
  attack::AttackResult ref;
  {
    simd::ScopedBackend scoped(Backend::kScalar);
    ref = run_attack(nullptr);
  }
  ASSERT_TRUE(ref.success) << ref.failure;
  ASSERT_TRUE(ref.key_confirmed);
  EXPECT_EQ(ref.probe_calls, ref.oracle_runs + ref.cache_hits);

  runtime::ThreadPool pool(8);
  std::vector<Backend> backends = {Backend::kScalar};
  for (const Backend b : usable_wide_backends()) backends.push_back(b);
  for (const Backend backend : backends) {
    for (runtime::ThreadPool* p : {static_cast<runtime::ThreadPool*>(nullptr), &pool}) {
      SCOPED_TRACE(std::string(simd::backend_name(backend)) +
                   (p != nullptr ? ", 8 threads" : ", serial"));
      simd::ScopedBackend scoped(backend);
      const attack::AttackResult res = run_attack(p);
      ASSERT_TRUE(res.success) << res.failure;
      EXPECT_EQ(res.faulty_keystream, ref.faulty_keystream);
      EXPECT_EQ(res.secrets.key, ref.secrets.key);
      EXPECT_EQ(res.recovered_state, ref.recovered_state);
      EXPECT_EQ(res.oracle_runs, ref.oracle_runs);
      EXPECT_EQ(res.cache_hits, ref.cache_hits);
      EXPECT_EQ(res.probe_calls, ref.probe_calls);
      EXPECT_EQ(res.phase_runs, ref.phase_runs);
      EXPECT_EQ(res.log, ref.log);
    }
  }
}

TEST(SimdAttack, CampaignFingerprintInvariantAcrossBackendsAndThreads) {
  campaign::CampaignOptions opt;
  opt.trials = 2;
  opt.seed = 0x51d5eed;
  opt.threads = 1;
  u64 ref_fingerprint = 0;
  size_t ref_runs = 0;
  {
    simd::ScopedBackend scoped(Backend::kScalar);
    const campaign::CampaignReport ref = campaign::run_campaign(opt);
    ASSERT_TRUE(ref.all_expected());
    ref_fingerprint = ref.fingerprint();
    ref_runs = ref.total_oracle_runs;
  }

  std::vector<Backend> backends = {Backend::kScalar};
  for (const Backend b : usable_wide_backends()) backends.push_back(b);
  for (const Backend backend : backends) {
    for (const unsigned threads : {1u, 8u}) {
      if (backend == Backend::kScalar && threads == 1) continue;  // the reference
      SCOPED_TRACE(std::string(simd::backend_name(backend)) + ", " +
                   std::to_string(threads) + " threads");
      simd::ScopedBackend scoped(backend);
      campaign::CampaignOptions vopt = opt;
      vopt.threads = threads;
      const campaign::CampaignReport rep = campaign::run_campaign(vopt);
      EXPECT_EQ(rep.fingerprint(), ref_fingerprint);
      EXPECT_EQ(rep.total_oracle_runs, ref_runs);
    }
  }
}

}  // namespace
}  // namespace sbm
