// Fleet failover acceptance tests (DESIGN.md §4k).  A health-tracked board
// pool must be logically transparent: a quiet fleet answers bit-identically
// to a single board, a board death mid-phase migrates the unanswered probes
// to a spare with the paper's oracle_runs metric untouched, a degrading
// board is quarantined before its reads poison votes, hedged probes rescue
// straggler timeouts, and every logical result is invariant under board
// scheduling rotation, campaign thread count, and checkpoint signature
// rules for the fleet knobs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "attack/pipeline.h"
#include "campaign/campaign.h"
#include "campaign/checkpoint.h"
#include "common/json.h"
#include "faultsim/noise.h"
#include "fleet/fleet.h"
#include "fpga/system.h"
#include "runtime/probe_cache.h"
#include "runtime/retry.h"

namespace sbm {
namespace {

using faultsim::NoiseProfile;
using fleet::BoardState;
using fleet::FleetOptions;
using fleet::FleetOracle;
using runtime::ProbeError;

constexpr snow3g::Iv kHostIv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};

const fpga::System& shared_system() {
  static const fpga::System sys = fpga::build_system();
  return sys;
}

/// Clean single-board cached reference (the attack is deterministic, so one
/// run baselines every fleet comparison below).
const attack::AttackResult& clean_reference() {
  static const attack::AttackResult res = [] {
    const fpga::System& sys = shared_system();
    attack::DeviceOracle oracle(sys, kHostIv, nullptr, 64);
    runtime::ProbeCache cache;
    attack::PipelineConfig cfg;
    cfg.iv = kHostIv;
    cfg.cache = &cache;
    attack::Attack attack(oracle, sys.golden.bytes, cfg);
    return attack.execute();
  }();
  return res;
}

/// Fleet whose board 0 dies on its very first run while the spares stay
/// quiet: base profile carries only a death rate, board 0 scales it to 1.0
/// (clamped) and every other board scales it to zero.
FleetOptions board0_dies(unsigned boards) {
  FleetOptions opt;
  opt.boards = boards;
  opt.noise.death = 1e-4;
  opt.noise.seed = 0xf1ee7;
  opt.noise_factors.assign(boards, 0.0);
  opt.noise_factors[0] = 1e9;
  return opt;
}

TEST(FleetOracleTest, QuietFleetIsBitIdenticalToASingleBoard) {
  const fpga::System& sys = shared_system();

  std::vector<std::vector<u8>> probes;
  probes.push_back(sys.golden.bytes);
  std::vector<u8> patched = sys.golden.bytes;
  patched[patched.size() / 2] ^= 0x5a;  // arbitrary mid-fabric damage
  probes.push_back(std::move(patched));

  attack::DeviceOracle single(sys, kHostIv, nullptr, 64);
  const auto want = single.run_batch(probes, 8);

  FleetOptions opt;
  opt.boards = 4;  // default (quiet) noise profile on every board
  FleetOracle fleetd(sys, kHostIv, opt, nullptr, 64);
  const auto got = fleetd.run_batch(probes, 8);

  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(got[i], want[i]) << "probe " << i;
  EXPECT_EQ(got[0], fleetd.run(probes[0], 8));  // scalar path agrees too

  // No failover machinery fired, and only the preferred board served.
  EXPECT_EQ(fleetd.migrations(), 0u);
  EXPECT_EQ(fleetd.quarantines(), 0u);
  EXPECT_EQ(fleetd.hedged_wins(), 0u);
  EXPECT_EQ(fleetd.migration_runs(), 0u);
  EXPECT_EQ(fleetd.lost_probes(), 0u);
  EXPECT_EQ(fleetd.alive_boards(), 4u);
  EXPECT_EQ(fleetd.board_runs(0), fleetd.runs());
  EXPECT_EQ(fleetd.board_runs(1), 0u);
}

// The tentpole acceptance test: a noise profile that kills the serving
// board — fatal to a single-board attack — is survived by a 4-board fleet
// with the paper metric bit-identical to the clean run and the physical
// ledger balanced to the run.
TEST(FleetOracleTest, BoardDeathMigratesMidPhaseWithBalancedLedger) {
  const attack::AttackResult& clean = clean_reference();
  ASSERT_TRUE(clean.success) << clean.failure;
  const fpga::System& sys = shared_system();

  // The same profile on one board aborts the attack outright.
  {
    FleetOracle lone(sys, kHostIv, board0_dies(1), nullptr, 64);
    runtime::ProbeCache cache;
    attack::PipelineConfig cfg;
    cfg.iv = kHostIv;
    cfg.cache = &cache;
    cfg.retry = runtime::RetryPolicy::voting(1);
    attack::Attack doomed(lone, sys.golden.bytes, cfg);
    const attack::AttackResult res = doomed.execute();
    EXPECT_FALSE(res.success);
    EXPECT_TRUE(res.partial);
    EXPECT_EQ(res.abort_error, ProbeError::kDead);
  }

  FleetOracle fleetd(sys, kHostIv, board0_dies(4), nullptr, 64);
  runtime::ProbeCache cache;
  attack::PipelineConfig cfg;
  cfg.iv = kHostIv;
  cfg.cache = &cache;
  // voting(1): single confirmation, but a retry budget — migration needs the
  // attack layer to re-demand a timed-out probe instead of latching fatal.
  cfg.retry = runtime::RetryPolicy::voting(1);
  attack::Attack attack(fleetd, sys.golden.bytes, cfg);
  const attack::AttackResult res = attack.execute();

  ASSERT_TRUE(res.success) << res.failure;
  EXPECT_TRUE(res.key_confirmed);
  EXPECT_EQ(res.secrets.key, sys.options.key);
  EXPECT_EQ(res.faulty_keystream, clean.faulty_keystream);

  // The paper's cost metric is unchanged by the board loss...
  EXPECT_EQ(res.oracle_runs, clean.oracle_runs);
  EXPECT_EQ(res.cache_hits, clean.cache_hits);
  EXPECT_EQ(res.probe_calls, clean.probe_calls);
  EXPECT_EQ(res.phase_runs, clean.phase_runs);

  // ...the failover actually happened and no probe was lost...
  EXPECT_GE(fleetd.migrations(), 1u);
  EXPECT_EQ(fleetd.lost_probes(), 0u);
  EXPECT_EQ(fleetd.board_health(0).state, BoardState::kDead);
  EXPECT_NE(fleetd.board_health(0).died_at, static_cast<size_t>(-1));
  EXPECT_EQ(fleetd.alive_boards(), 3u);

  // ...and the physical ledger balances exactly, board by board.
  EXPECT_EQ(res.migration_runs, fleetd.migration_runs());
  EXPECT_GT(res.migration_runs, 0u);
  EXPECT_EQ(res.physical_runs,
            res.oracle_runs + res.retry_runs + res.vote_runs + res.migration_runs);
  EXPECT_EQ(res.physical_runs, fleetd.runs());
  size_t per_board = 0;
  for (unsigned i = 0; i < fleetd.boards(); ++i) per_board += fleetd.board_runs(i);
  EXPECT_EQ(per_board, fleetd.runs());
}

TEST(FleetOracleTest, AllBoardsDeadEscalatesLikeASingleDeadBoard) {
  const fpga::System& sys = shared_system();
  FleetOptions opt;
  opt.boards = 2;
  opt.noise.death = 1e-4;
  opt.noise.seed = 0xdead2;
  opt.noise_factors = {1e9, 1e9};  // both boards die on their first run

  FleetOracle fleetd(sys, kHostIv, opt, nullptr, 64);

  // One batch wide enough to cross the presumed-dead threshold on both
  // boards: board 0 times out the whole chunk and is presumed dead, the
  // migration replays onto board 1, which does the same.
  std::vector<std::vector<u8>> batch(8, sys.golden.bytes);
  for (const auto& out : fleetd.run_batch(batch, 8)) {
    EXPECT_EQ(out.error(), ProbeError::kTimeout);
  }
  EXPECT_EQ(fleetd.alive_boards(), 0u);
  EXPECT_EQ(fleetd.migrations(), 1u);
  EXPECT_EQ(fleetd.lost_probes(), 0u);  // the replay target was still alive

  const size_t runs_before_attack = fleetd.runs();
  runtime::ProbeCache cache;
  attack::PipelineConfig cfg;
  cfg.iv = kHostIv;
  cfg.cache = &cache;
  cfg.retry = runtime::RetryPolicy::voting(1);
  attack::Attack attack(fleetd, sys.golden.bytes, cfg);
  const attack::AttackResult res = attack.execute();

  // Contained exactly like the single-board death: a partial result with a
  // checkpoint, never a crash and never a wrong key — and every probe the
  // dead fleet ate is accounted as lost.
  EXPECT_FALSE(res.success);
  EXPECT_TRUE(res.partial);
  EXPECT_EQ(res.abort_error, ProbeError::kDead);
  EXPECT_GT(fleetd.lost_probes(), 0u);
  EXPECT_EQ(res.physical_runs,
            res.oracle_runs + res.retry_runs + res.vote_runs + res.migration_runs);
  EXPECT_EQ(res.physical_runs, fleetd.runs() - runs_before_attack);
}

TEST(FleetOracleTest, DegradedBoardIsQuarantinedAndStopsServing) {
  const fpga::System& sys = shared_system();
  FleetOptions opt;
  opt.boards = 2;
  opt.noise.truncate = 0.3;
  opt.noise.seed = 0x9a41;
  opt.noise_factors = {2.0, 0.0};  // board 0 truncates 60% of reads

  FleetOracle fleetd(sys, kHostIv, opt, nullptr, 64);
  std::vector<std::vector<u8>> batch(64, sys.golden.bytes);

  // Batch 1 lands on board 0; by its last observation the board has the
  // min_health_samples the EWMA needs and an error rate far above the
  // quarantine threshold, so it is benched in favour of the clean spare.
  (void)fleetd.run_batch(batch, 8);
  EXPECT_EQ(fleetd.quarantines(), 1u);
  EXPECT_EQ(fleetd.board_health(0).state, BoardState::kQuarantined);
  EXPECT_GT(fleetd.board_health(0).ewma_error, 0.25);
  const size_t board0_runs = fleetd.board_runs(0);
  EXPECT_EQ(board0_runs, 64u);

  (void)fleetd.run_batch(batch, 8);
  (void)fleetd.run_batch(batch, 8);
  EXPECT_EQ(fleetd.board_runs(0), board0_runs);  // benched: no further serves
  EXPECT_EQ(fleetd.board_runs(1), 128u);
  EXPECT_EQ(fleetd.board_health(1).state, BoardState::kHealthy);
  EXPECT_EQ(fleetd.migrations(), 0u);  // quarantine is not a migration
  EXPECT_EQ(fleetd.alive_boards(), 2u);
}

TEST(FleetOracleTest, HedgedProbesRescueStragglerTimeouts) {
  const fpga::System& sys = shared_system();
  FleetOptions opt;
  opt.boards = 2;
  opt.hedge = true;
  opt.noise.timeout = 0.45;
  opt.noise.seed = 0x8ed9e;
  opt.noise_factors = {2.0, 0.0};  // board 0 times out 90% of reads

  FleetOracle fleetd(sys, kHostIv, opt, nullptr, 64);
  for (int i = 0; i < 12; ++i) {
    // Single probes are ragged tails by definition, so each one is hedged on
    // the quiet spare; the merge must always surface a usable answer.
    const auto out = fleetd.run(sys.golden.bytes, 8);
    EXPECT_TRUE(out.ok()) << "probe " << i << " error " << static_cast<int>(out.error());
  }
  EXPECT_GE(fleetd.hedged_wins(), 1u);
  // Every hedge duplicate is accounted as fleet-internal physical work.
  EXPECT_GE(fleetd.migration_runs(), fleetd.hedged_wins());
  EXPECT_EQ(fleetd.lost_probes(), 0u);
}

TEST(FleetOracleTest, LogicalResultIsInvariantUnderSchedulingRotation) {
  const attack::AttackResult& clean = clean_reference();
  const fpga::System& sys = shared_system();

  auto run_with_start = [&](unsigned start_board) {
    FleetOptions opt = board0_dies(4);
    opt.start_board = start_board;
    FleetOracle fleetd(sys, kHostIv, opt, nullptr, 64);
    runtime::ProbeCache cache;
    attack::PipelineConfig cfg;
    cfg.iv = kHostIv;
    cfg.cache = &cache;
    cfg.retry = runtime::RetryPolicy::voting(1);
    attack::Attack attack(fleetd, sys.golden.bytes, cfg);
    return attack.execute();
  };

  // start_board 0 serves the doomed board first and must migrate;
  // start_board 1 never touches it.  The logical result is identical, only
  // the physical migration ledger differs.
  const attack::AttackResult doomed_first = run_with_start(0);
  const attack::AttackResult doomed_skipped = run_with_start(1);

  ASSERT_TRUE(doomed_first.success) << doomed_first.failure;
  ASSERT_TRUE(doomed_skipped.success) << doomed_skipped.failure;
  EXPECT_EQ(doomed_first.secrets.key, doomed_skipped.secrets.key);
  EXPECT_EQ(doomed_first.faulty_keystream, doomed_skipped.faulty_keystream);
  EXPECT_EQ(doomed_first.oracle_runs, doomed_skipped.oracle_runs);
  EXPECT_EQ(doomed_first.oracle_runs, clean.oracle_runs);
  EXPECT_EQ(doomed_first.phase_runs, doomed_skipped.phase_runs);
  EXPECT_GT(doomed_first.migration_runs, 0u);
  EXPECT_EQ(doomed_skipped.migration_runs, 0u);
}

TEST(FleetCampaign, FingerprintIsThreadCountInvariantUnderBoardDeath) {
  campaign::CampaignOptions opt;
  opt.trials = 2;
  opt.protected_every = 2;  // one real attack + one cheap protected trial
  opt.seed = 0xf1ee70;
  opt.fleet_size = 3;
  opt.noise.death = 1e-4;
  opt.noise.seed = 0xf1ee71;
  opt.fleet_noise_factors = {1e9, 0.0, 0.0};  // board 0 dies in every trial

  opt.threads = 1;
  const campaign::CampaignReport serial = campaign::run_campaign(opt);
  opt.threads = 4;
  const campaign::CampaignReport parallel = campaign::run_campaign(opt);

  EXPECT_TRUE(serial.all_expected());
  EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
  ASSERT_EQ(serial.trials.size(), parallel.trials.size());
  for (size_t i = 0; i < serial.trials.size(); ++i) {
    EXPECT_EQ(serial.trials[i].oracle_runs, parallel.trials[i].oracle_runs) << "trial " << i;
    EXPECT_EQ(serial.trials[i].phase_runs, parallel.trials[i].phase_runs) << "trial " << i;
  }
  // The board death was real, survived, and reported.
  EXPECT_GT(serial.total_migration_runs, 0u);
  EXPECT_EQ(serial.trials[0].physical_runs,
            serial.trials[0].oracle_runs + serial.trials[0].retry_runs +
                serial.trials[0].vote_runs + serial.trials[0].migration_runs);
}

TEST(FleetCampaign, CheckpointSignatureCoversFleetKnobsButNotDeadline) {
  campaign::CampaignOptions opt;
  const u64 base = campaign::options_signature(opt);

  campaign::CampaignOptions fleet_opt = opt;
  fleet_opt.fleet_size = 4;
  EXPECT_NE(campaign::options_signature(fleet_opt), base);

  campaign::CampaignOptions hedged = fleet_opt;
  hedged.fleet_hedge = true;
  EXPECT_NE(campaign::options_signature(hedged), campaign::options_signature(fleet_opt));

  campaign::CampaignOptions factored = fleet_opt;
  factored.fleet_noise_factors = {1.0, 0.5};
  EXPECT_NE(campaign::options_signature(factored), campaign::options_signature(fleet_opt));

  // The deadline changes when a run stops, never what it computes: a job
  // resumed with a different budget must still match its checkpoint.
  campaign::CampaignOptions deadlined = fleet_opt;
  deadlined.deadline_seconds = 30;
  EXPECT_EQ(campaign::options_signature(deadlined), campaign::options_signature(fleet_opt));
}

TEST(FleetCampaign, OptionsJsonRoundTripsFleetAndDeadlineFields) {
  campaign::CampaignOptions opt;
  opt.fleet_size = 4;
  opt.fleet_hedge = true;
  opt.fleet_noise_factors = {1e9, 0.0, 1.5};
  opt.deadline_seconds = 12.5;

  JsonWriter w;
  campaign::write_options(w, opt);
  const auto doc = parse_json(w.str());
  ASSERT_TRUE(doc.has_value());
  const auto back = campaign::options_from_json(*doc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->fleet_size, 4u);
  EXPECT_TRUE(back->fleet_hedge);
  EXPECT_EQ(back->fleet_noise_factors, opt.fleet_noise_factors);
  EXPECT_EQ(back->deadline_seconds, 12.5);
  EXPECT_EQ(campaign::options_signature(*back), campaign::options_signature(opt));

  // Malformed fleet/deadline specs are rejected, not defaulted.
  EXPECT_FALSE(campaign::options_from_json(*parse_json("{\"fleet_size\":0}")).has_value());
  EXPECT_FALSE(
      campaign::options_from_json(*parse_json("{\"deadline_seconds\":0}")).has_value());
  EXPECT_FALSE(
      campaign::options_from_json(*parse_json("{\"deadline_seconds\":-3}")).has_value());
  EXPECT_FALSE(
      campaign::options_from_json(*parse_json("{\"fleet_noise_factors\":[-1]}")).has_value());
}

}  // namespace
}  // namespace sbm
