// Differential property tests on randomly generated netlists: whatever the
// generator produces, technology mapping, dual-output packing and the
// bitstream round trip must all preserve the sequential behaviour.
//
// This is the strongest correctness argument for the mapper/packer: the
// SNOW 3G equivalence tests exercise one fixed design; these exercise a
// family of random DAGs with registers, wide/narrow gates, inverter chains,
// carry cells and keep-marked nodes.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "mapper/lut_network.h"
#include "mapper/mapper.h"
#include "mapper/packing.h"
#include "netlist/netlist.h"
#include "netlist/sim.h"

namespace sbm::netlist {
namespace {

struct RandomDesign {
  Network net;
  std::vector<NodeId> inputs;
  std::vector<NodeId> dffs;
  std::vector<NodeId> outputs;
};

/// Builds a random sequential netlist: `n_inputs` PIs, `n_dffs` registers,
/// `n_gates` gates wired to random earlier nodes, a few keep marks, DFF D
/// inputs and POs drawn from the gate pool.
RandomDesign random_design(u64 seed, size_t n_inputs = 6, size_t n_dffs = 4,
                           size_t n_gates = 120, bool with_keep = false) {
  RandomDesign d;
  Rng rng(seed);
  for (size_t i = 0; i < n_inputs; ++i) {
    d.inputs.push_back(d.net.add_input("in" + std::to_string(i)));
  }
  for (size_t i = 0; i < n_dffs; ++i) {
    d.dffs.push_back(d.net.add_dff("r" + std::to_string(i)));
  }
  std::vector<NodeId> pool = d.inputs;
  for (const NodeId q : d.dffs) pool.push_back(q);

  for (size_t i = 0; i < n_gates; ++i) {
    const NodeId a = pool[rng.next_below(pool.size())];
    const NodeId b = pool[rng.next_below(pool.size())];
    NodeId g;
    switch (rng.next_below(6)) {
      case 0:
        g = d.net.add_gate(NodeKind::kAnd, a, b);
        break;
      case 1:
        g = d.net.add_gate(NodeKind::kOr, a, b);
        break;
      case 2:
      case 3:
        g = d.net.add_gate(NodeKind::kXor, a, b);
        break;
      case 4:
        g = d.net.add_not(a);
        break;
      default: {
        const NodeId c = pool[rng.next_below(pool.size())];
        g = d.net.add_carry(a, b, c);
        break;
      }
    }
    if (with_keep && d.net.node(g).kind == NodeKind::kXor && rng.next_below(8) == 0) {
      d.net.set_keep(g);
    }
    pool.push_back(g);
  }
  for (size_t i = 0; i < d.dffs.size(); ++i) {
    d.net.connect_dff(d.dffs[i], pool[pool.size() - 1 - i]);
  }
  for (size_t i = 0; i < 4 && i + 8 < pool.size(); ++i) {
    const NodeId po = pool[pool.size() - 5 - i];
    d.outputs.push_back(po);
    d.net.add_output("po" + std::to_string(i), po);
  }
  return d;
}

/// Clocks both simulators with the same random input sequence and compares
/// every PO on every cycle.
template <typename SimA, typename SimB>
void compare_sims(const RandomDesign& d, SimA& a, SimB& b, u64 seed, int cycles) {
  Rng rng(seed);
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (const NodeId in : d.inputs) {
      const bool v = rng.next_bool();
      a.set_input(in, v);
      b.set_input(in, v);
    }
    a.settle();
    b.settle();
    for (const NodeId po : d.outputs) {
      ASSERT_EQ(a.value(po), b.value(po)) << "cycle " << cycle << " po " << po;
    }
    a.clock();
    b.clock();
  }
}

class RandomNetlist : public ::testing::TestWithParam<u64> {};

TEST_P(RandomNetlist, MappingPreservesBehavior) {
  RandomDesign d = random_design(GetParam());
  const mapper::LutNetwork mapped = mapper::map_network(d.net);
  Simulator ref(d.net);
  mapper::LutSimulator lut(d.net, mapped);
  compare_sims(d, ref, lut, GetParam() ^ 0x1234, 40);
}

TEST_P(RandomNetlist, PackingPreservesBehavior) {
  RandomDesign d = random_design(GetParam() + 1000);
  const mapper::PlacedDesign placed = mapper::pack_and_place(mapper::map_network(d.net));
  Simulator ref(d.net);
  mapper::LutSimulator lut(d.net, placed.mapped);
  compare_sims(d, ref, lut, GetParam() ^ 0x5678, 40);
}

TEST_P(RandomNetlist, KeepConstraintsPreserveBehavior) {
  RandomDesign d = random_design(GetParam() + 2000, 6, 4, 120, /*with_keep=*/true);
  const mapper::LutNetwork mapped = mapper::map_network(d.net);
  Simulator ref(d.net);
  mapper::LutSimulator lut(d.net, mapped);
  compare_sims(d, ref, lut, GetParam() ^ 0x9abc, 40);
}

TEST_P(RandomNetlist, InitRoundTripPreservesFunctions) {
  // Every physical site's INIT, decoded back through function_from_init,
  // must equal the packed logical function.
  RandomDesign d = random_design(GetParam() + 3000);
  const mapper::PlacedDesign placed = mapper::pack_and_place(mapper::map_network(d.net));
  for (size_t site = 0; site < placed.phys.size(); ++site) {
    const u64 init = placed.init_of(site);
    const auto& p = placed.phys[site];
    if (p.o6_lut >= 0) {
      ASSERT_EQ(placed.function_from_init(site, false, init),
                placed.mapped.luts[static_cast<size_t>(p.o6_lut)].function);
    }
    if (p.o5_lut >= 0) {
      ASSERT_EQ(placed.function_from_init(site, true, init),
                placed.mapped.luts[static_cast<size_t>(p.o5_lut)].function);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomNetlist,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                                           16, 17, 18, 19, 20));

}  // namespace
}  // namespace sbm::netlist
