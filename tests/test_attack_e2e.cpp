// End-to-end attack tests: the full Section VI pipeline against the
// simulated victim, plus the Section VII demonstration that the protected
// implementation resists it.
#include <gtest/gtest.h>

#include "attack/pipeline.h"
#include "bitstream/secure.h"
#include "common/rng.h"
#include "fpga/system.h"

namespace sbm::attack {
namespace {

constexpr snow3g::Iv kHostIv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};

PipelineConfig config_for(const snow3g::Iv& iv) {
  PipelineConfig cfg;
  cfg.iv = iv;
  return cfg;
}

TEST(AttackE2E, RecoversThePaperKey) {
  const fpga::System sys = fpga::build_system();
  DeviceOracle oracle(sys, kHostIv);
  Attack attack(oracle, sys.golden.bytes, config_for(kHostIv));
  const AttackResult res = attack.execute();
  ASSERT_TRUE(res.success) << res.failure;
  EXPECT_EQ(res.secrets.key, sys.options.key);
  EXPECT_TRUE(res.key_confirmed);
  EXPECT_EQ(res.lut1.size(), 32u);
  EXPECT_GE(res.feedback.size(), 32u);
  EXPECT_GT(res.mux_patches, 200u);
  // Every LUT1 resolved its s0 input via the two alpha2 runs.
  for (const auto& lut : res.lut1) EXPECT_GE(lut.s0_var, 0);
}

TEST(AttackE2E, RecoversARandomKey) {
  Rng rng(0xfeedface);
  fpga::SystemOptions opt;
  opt.key = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  const fpga::System sys = fpga::build_system(opt);
  const snow3g::Iv iv = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  DeviceOracle oracle(sys, iv);
  Attack attack(oracle, sys.golden.bytes, config_for(iv));
  const AttackResult res = attack.execute();
  ASSERT_TRUE(res.success) << res.failure;
  EXPECT_EQ(res.secrets.key, opt.key);
  EXPECT_EQ(res.secrets.iv, iv);
}

TEST(AttackE2E, FaultyKeystreamIsTheLfsrState) {
  // The final faulty keystream must equal the software model's Table IV
  // analog for the same key/IV.
  const fpga::System sys = fpga::build_system();
  DeviceOracle oracle(sys, kHostIv);
  Attack attack(oracle, sys.golden.bytes, config_for(kHostIv));
  const AttackResult res = attack.execute();
  ASSERT_TRUE(res.success) << res.failure;
  snow3g::Snow3g model(sys.options.key, kHostIv, snow3g::FaultConfig::full_attack());
  EXPECT_EQ(res.faulty_keystream, model.keystream(res.faulty_keystream.size()));
}

TEST(AttackE2E, WorksWithCrcRecomputation) {
  // Section V-B's other option: recompute and replace the CRC for every
  // modified bitstream instead of disabling the check.  The device keeps
  // verifying the CRC on every load.
  const fpga::System sys = fpga::build_system();
  DeviceOracle oracle(sys, kHostIv);
  PipelineConfig cfg = config_for(kHostIv);
  cfg.crc = CrcHandling::kRecompute;
  Attack attack(oracle, sys.golden.bytes, cfg);
  const AttackResult res = attack.execute();
  ASSERT_TRUE(res.success) << res.failure;
  EXPECT_EQ(res.secrets.key, sys.options.key);
}

TEST(AttackE2E, PhaseRunAccounting) {
  const fpga::System sys = fpga::build_system();
  DeviceOracle oracle(sys, kHostIv);
  Attack attack(oracle, sys.golden.bytes, config_for(kHostIv));
  const AttackResult res = attack.execute();
  ASSERT_TRUE(res.success) << res.failure;
  size_t total = 0;
  for (const auto& [phase, runs] : res.phase_runs) total += runs;
  EXPECT_EQ(total, res.oracle_runs);
  ASSERT_EQ(res.phase_runs.size(), 6u);  // setup + 5 phases
  EXPECT_EQ(res.phase_runs[3].first, "feedback");
  // The two alpha2 keystream computations of Section VI-D.1.
  EXPECT_EQ(res.phase_runs[4].first, "alpha2");
  EXPECT_EQ(res.phase_runs[4].second, 2u);
}

TEST(AttackE2E, ProtectedImplementationResists) {
  fpga::SystemOptions opt;
  opt.protected_variant = true;
  const fpga::System sys = fpga::build_system(opt);
  DeviceOracle oracle(sys, kHostIv);
  PipelineConfig cfg = config_for(kHostIv);
  Attack attack(oracle, sys.golden.bytes, cfg);
  const AttackResult res = attack.execute();
  EXPECT_FALSE(res.success);
  EXPECT_FALSE(res.failure.empty());
}

TEST(AttackE2E, WorksThroughTheEncryptedEnvelope) {
  // Fig. 1 flow: the attacker holds K_E (side channel), strips the
  // MAC-then-encrypt envelope, attacks the plain bitstream, and re-protects
  // the faulty image so the device accepts it.
  const fpga::System sys = fpga::build_system();
  crypto::Aes256Key ke{};
  ke[13] = 0x5c;
  bitstream::AuthKey ka{};
  ka[2] = 0x77;
  const auto envelope = bitstream::protect_bitstream(sys.golden.bytes, ke, ka, {});

  // Device only accepts encrypted images now; the oracle re-protects each
  // probe with the recovered K_A.
  class EncryptedOracle : public Oracle {
   public:
    EncryptedOracle(const fpga::System& sys, crypto::Aes256Key ke, bitstream::AuthKey ka,
                    snow3g::Iv iv)
        : sys_(sys), ke_(ke), ka_(ka), iv_(iv) {}
    runtime::ProbeOutcome run(std::span<const u8> bitstream, size_t words) override {
      ++runs_;
      const auto enc = bitstream::protect_bitstream(bitstream, ke_, ka_, {});
      fpga::Device dev = sys_.make_device();
      if (!dev.configure_encrypted(enc, ke_)) return std::nullopt;
      return dev.keystream(iv_, words);
    }

   private:
    const fpga::System& sys_;
    crypto::Aes256Key ke_;
    bitstream::AuthKey ka_;
    snow3g::Iv iv_;
  };

  const auto stolen = bitstream::unprotect_bitstream(envelope, ke);
  ASSERT_TRUE(stolen.ok) << stolen.error;
  EXPECT_EQ(stolen.k_a, ka);  // K_A read out of the decrypted image

  EncryptedOracle oracle(sys, ke, stolen.k_a, kHostIv);
  Attack attack(oracle, stolen.plain, config_for(kHostIv));
  const AttackResult res = attack.execute();
  ASSERT_TRUE(res.success) << res.failure;
  EXPECT_EQ(res.secrets.key, sys.options.key);
}

}  // namespace
}  // namespace sbm::attack
