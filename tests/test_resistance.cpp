// Defender-side resistance evaluation tests.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "attack/countermeasure.h"
#include "attack/resistance.h"
#include "fpga/system.h"

namespace sbm::attack {
namespace {

TEST(Resistance, UnprotectedSystemIsAttackable) {
  const fpga::System sys = fpga::build_system();
  const ResistanceReport r = evaluate_resistance(sys.golden.bytes);
  EXPECT_TRUE(r.attackable);
  EXPECT_GE(r.keystream_family_max, 32u);
  EXPECT_GT(r.occupied_luts, 100u);
  EXPECT_GT(r.p_class_histogram.size(), 10u);
  EXPECT_FALSE(r.summary().empty());
}

TEST(Resistance, ProtectedSystemIsNot) {
  fpga::SystemOptions opt;
  opt.protected_variant = true;
  const fpga::System sys = fpga::build_system(opt);
  const ResistanceReport r = evaluate_resistance(sys.golden.bytes);
  EXPECT_FALSE(r.attackable);
  EXPECT_LT(r.keystream_family_max, 32u);
  EXPECT_EQ(r.feedback_family_total, 0u);
  // Hiding 32 targets among the XOR2 halves must cost > 2^80.
  EXPECT_GE(r.xor2_half_candidates, 192u);
  EXPECT_GT(r.log2_exhaustive_search, 80.0);
}

// Regression: the half-table candidate count must tally physical placement
// sites, not raw (position, permutation) matches.  One placed XOR2 matches
// under several of the 5! input permutations and a vacuous single-output
// table matches as both halves, so the raw scan counts decoy placements
// with replacement — inflating the reported C(n, 32) bound with candidates
// an attacker could never select twice.
TEST(Resistance, Xor2CandidatesCountUniquePlacementSites) {
  fpga::SystemOptions opt;
  opt.protected_variant = true;
  const fpga::System sys = fpga::build_system(opt);
  const ResistanceReport r = evaluate_resistance(sys.golden.bytes);

  const auto raw = find_xor2_halves(sys.golden.bytes);
  const auto sites = unique_xor2_half_sites(sys.golden.bytes);
  EXPECT_EQ(r.xor2_half_candidates, sites.size());
  // Deduping must strictly shrink the raw match list (the inflation is real)
  // while keeping the corrected bound comfortably above the 2^80 target.
  EXPECT_LT(sites.size(), raw.size());
  EXPECT_GE(sites.size(), 192u);
  // No two entries may share a physical (site, half).
  std::set<std::pair<size_t, bool>> seen;
  for (const HalfMatch& h : sites) {
    EXPECT_TRUE(seen.insert({h.byte_index, h.o5_half}).second)
        << "duplicate site at byte " << h.byte_index;
  }
  // The corrected bound matches C(sites - 32, 32) exactly.
  EXPECT_NEAR(r.log2_exhaustive_search,
              log2_binomial(static_cast<unsigned>(sites.size()) - 32, 32), 1e-9);
}

TEST(Resistance, HistogramCountsAddUp) {
  const fpga::System sys = fpga::build_system();
  const ResistanceReport r = evaluate_resistance(sys.golden.bytes);
  size_t total = 0;
  for (const auto& [tt, count] : r.p_class_histogram) total += count;
  EXPECT_EQ(total, r.occupied_luts);
  ASSERT_FALSE(r.top_classes.empty());
  for (size_t i = 1; i < r.top_classes.size(); ++i) {
    EXPECT_GE(r.top_classes[i - 1].first, r.top_classes[i].first);
  }
}

TEST(Resistance, GarbageInputYieldsEmptyReport) {
  std::vector<u8> garbage(512, 0xAB);
  const ResistanceReport r = evaluate_resistance(garbage);
  EXPECT_EQ(r.occupied_luts, 0u);
  EXPECT_FALSE(r.attackable);
}

}  // namespace
}  // namespace sbm::attack
