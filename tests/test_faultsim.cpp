// Fault-tolerant pipeline acceptance tests: the attack must recover the
// planted key through a noisy oracle with the paper's oracle_runs metric
// unchanged and the retry/vote overhead reported separately; scripted
// faults must be absorbed (transients) or contained (device death -> a
// partial AttackResult with a serializable checkpoint, never a crash and
// never a wrong key); and the probe cache must never serve a corrupt read.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "attack/pipeline.h"
#include "common/rng.h"
#include "faultsim/faulty_oracle.h"
#include "faultsim/noise.h"
#include "fpga/system.h"
#include "runtime/probe_cache.h"
#include "runtime/retry.h"

namespace sbm {
namespace {

using faultsim::FaultAction;
using faultsim::FaultPlan;
using faultsim::FaultyOracle;
using faultsim::NoiseProfile;
using runtime::ProbeError;
using runtime::ProbeOutcome;

constexpr snow3g::Iv kHostIv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};

const fpga::System& shared_system() {
  static const fpga::System sys = fpga::build_system();
  return sys;
}

attack::PipelineConfig cached_config(runtime::ProbeCache* cache) {
  attack::PipelineConfig cfg;
  cfg.iv = kHostIv;
  cfg.cache = cache;
  return cfg;
}

/// Clean single-shot cached reference run (shared across tests; the attack
/// is deterministic, so one run serves as the baseline for all of them).
const attack::AttackResult& clean_reference() {
  static const attack::AttackResult res = [] {
    const fpga::System& sys = shared_system();
    attack::DeviceOracle oracle(sys, kHostIv, nullptr, 64);
    runtime::ProbeCache cache;
    attack::Attack attack(oracle, sys.golden.bytes, cached_config(&cache));
    return attack.execute();
  }();
  return res;
}

/// A 2-of-agreement policy for scripted-fault tests: every logical probe
/// costs exactly two physical reads on a clean board, so physical run
/// indexes map deterministically onto the clean run's logical probe order.
runtime::RetryPolicy pair_voting() {
  runtime::RetryPolicy p;
  p.max_attempts = 4;
  p.confirm = 2;
  p.max_reads = 8;
  return p;
}

/// Simple deterministic inner oracle: keystream word = bitstream size.
class SizeOracle : public attack::Oracle {
 public:
  ProbeOutcome run(std::span<const u8> bitstream, size_t words) override {
    ++runs_;
    return std::vector<u32>(words, static_cast<u32>(bitstream.size()));
  }
};

TEST(FaultyOracle, ScriptedPlanInjectsEachFaultKind) {
  SizeOracle inner;
  FaultPlan plan;
  plan.reject_at(0).flip_at(1, 0, 3).truncate_at(2, 2).timeout_at(3).kill_at(5);
  FaultyOracle oracle(inner, plan);

  const std::vector<u8> probe = {1, 2, 3, 4, 5};
  const std::vector<u32> clean(4, 5);

  const auto r0 = oracle.run(probe, 4);
  EXPECT_EQ(r0.error(), ProbeError::kRejected);
  const auto r1 = oracle.run(probe, 4);
  ASSERT_TRUE(r1.ok());
  std::vector<u32> flipped = clean;
  flipped[0] ^= u32{1} << 3;
  EXPECT_EQ(*r1, flipped);
  EXPECT_EQ(oracle.run(probe, 4).error(), ProbeError::kCorrupt);
  EXPECT_EQ(oracle.run(probe, 4).error(), ProbeError::kTimeout);
  EXPECT_EQ(oracle.run(probe, 4), ProbeOutcome(clean));  // unlisted run is clean
  EXPECT_FALSE(oracle.dead());

  EXPECT_EQ(oracle.run(probe, 4).error(), ProbeError::kTimeout);  // the kill
  EXPECT_TRUE(oracle.dead());
  EXPECT_EQ(oracle.died_at(), 5u);
  EXPECT_EQ(oracle.run(probe, 4).error(), ProbeError::kTimeout);  // dead forever

  EXPECT_EQ(oracle.runs(), 7u);  // every faulted run still cost a reconfiguration
  EXPECT_EQ(inner.runs(), 7u);
  EXPECT_EQ(oracle.injected_rejections(), 1u);
  EXPECT_EQ(oracle.injected_flips(), 1u);
  EXPECT_EQ(oracle.injected_truncations(), 1u);
  EXPECT_GE(oracle.injected_timeouts(), 3u);  // timeout + kill + post-death run
}

TEST(FaultyOracle, NoiseStreamIsIdenticalForBatchAndScalarExecution) {
  // The fault draw depends only on (seed, physical run index), so a batch
  // and a scalar replay of the same probe order see the same fault stream.
  NoiseProfile noise = NoiseProfile::harsh();
  noise.seed = 0x7e57;

  std::vector<std::vector<u8>> probes;
  for (size_t i = 0; i < 40; ++i) probes.emplace_back(i + 1, static_cast<u8>(i));

  SizeOracle inner_batch;
  FaultyOracle batched(inner_batch, noise);
  const auto batch_out = batched.run_batch(probes, 8);

  SizeOracle inner_scalar;
  FaultyOracle scalar(inner_scalar, noise);
  ASSERT_EQ(batch_out.size(), probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(batch_out[i], scalar.run(probes[i], 8)) << "run " << i;
  }
  EXPECT_EQ(batched.runs(), scalar.runs());
  EXPECT_EQ(batched.injected_flips(), scalar.injected_flips());
  EXPECT_EQ(batched.injected_rejections(), scalar.injected_rejections());
}

TEST(NoiseProfileTest, NamedProfilesParse) {
  EXPECT_TRUE(NoiseProfile::named("none").has_value());
  EXPECT_TRUE(NoiseProfile::named("none")->quiet());
  ASSERT_TRUE(NoiseProfile::named("mild").has_value());
  EXPECT_EQ(*NoiseProfile::named("mild"), NoiseProfile::mild());
  ASSERT_TRUE(NoiseProfile::named("harsh@0x123").has_value());
  EXPECT_EQ(NoiseProfile::named("harsh@0x123")->seed, 0x123u);
  EXPECT_FALSE(NoiseProfile::named("bogus").has_value());
  EXPECT_FALSE(NoiseProfile::named("mild@junk").has_value());
  // The acceptance floor: at least 1e-3 bit flips, 2% transient rejections.
  EXPECT_GE(NoiseProfile::mild().bit_flip, 1e-3);
  EXPECT_GE(NoiseProfile::mild().transient_reject, 0.02);
}

// The headline acceptance test: the full attack through a mild()-noisy
// oracle recovers the planted key; the paper's oracle_runs metric is
// bit-identical to the clean run; retries and votes are accounted
// separately and stay within 3x the clean run's total probe work.
TEST(NoisyAttack, RecoversKeyWithHonestAccounting) {
  const attack::AttackResult& clean = clean_reference();
  ASSERT_TRUE(clean.success) << clean.failure;

  const fpga::System& sys = shared_system();
  attack::DeviceOracle device(sys, kHostIv, nullptr, 64);
  FaultyOracle oracle(device, NoiseProfile::mild());
  runtime::ProbeCache cache;
  attack::PipelineConfig cfg = cached_config(&cache);
  cfg.retry = runtime::RetryPolicy::voting(3);
  attack::Attack attack(oracle, sys.golden.bytes, cfg);
  const attack::AttackResult res = attack.execute();

  ASSERT_TRUE(res.success) << res.failure;
  EXPECT_FALSE(res.partial);
  EXPECT_TRUE(res.key_confirmed);
  EXPECT_EQ(res.secrets.key, sys.options.key);
  EXPECT_EQ(res.faulty_keystream, clean.faulty_keystream);

  // The paper's cost metric is unchanged by the noise.
  EXPECT_EQ(res.oracle_runs, clean.oracle_runs);
  EXPECT_EQ(res.cache_hits, clean.cache_hits);
  EXPECT_EQ(res.probe_calls, clean.probe_calls);
  EXPECT_EQ(res.phase_runs, clean.phase_runs);

  // Overhead is reported separately and adds up exactly.
  EXPECT_EQ(res.physical_runs, res.oracle_runs + res.retry_runs + res.vote_runs);
  EXPECT_EQ(res.physical_runs, oracle.runs());
  EXPECT_GT(res.vote_runs, 0u);
  EXPECT_GT(res.retry_runs, 0u);
  EXPECT_GT(res.corruption_detections, 0u);
  EXPECT_GT(res.transient_rejections, 0u);

  // Budget: noisy physical work <= 3x the clean run's total probe work.
  EXPECT_LE(res.physical_runs, 3 * clean.probe_calls);

  // The clean run spends zero overhead.
  EXPECT_EQ(clean.physical_runs, clean.oracle_runs);
  EXPECT_EQ(clean.retry_runs, 0u);
  EXPECT_EQ(clean.vote_runs, 0u);
}

TEST(NoisyAttack, TransientFaultsOfEveryKindAreAbsorbed) {
  const attack::AttackResult& clean = clean_reference();
  // Physical window of the z-path phase under pair_voting() on a clean
  // board: two reads per logical cache miss.
  const size_t setup_misses = clean.phase_runs[0].second;
  const size_t zpath_base = 2 * setup_misses;

  const fpga::System& sys = shared_system();
  FaultPlan plan;
  plan.reject_at(zpath_base + 2)
      .timeout_at(zpath_base + 5)
      .truncate_at(zpath_base + 8, 3)
      .flip_at(zpath_base + 11, 3, 17);
  attack::DeviceOracle device(sys, kHostIv, nullptr, 64);
  FaultyOracle oracle(device, plan);
  runtime::ProbeCache cache;
  attack::PipelineConfig cfg = cached_config(&cache);
  cfg.retry = pair_voting();
  attack::Attack attack(oracle, sys.golden.bytes, cfg);
  const attack::AttackResult res = attack.execute();

  ASSERT_TRUE(res.success) << res.failure;
  EXPECT_EQ(res.secrets.key, sys.options.key);
  EXPECT_FALSE(oracle.dead());

  // Each scripted fault actually fired...
  EXPECT_EQ(oracle.injected_rejections(), 1u);
  EXPECT_EQ(oracle.injected_timeouts(), 1u);
  EXPECT_EQ(oracle.injected_truncations(), 1u);
  EXPECT_EQ(oracle.injected_flips(), 1u);

  // ...and none of them shifted the logical metrics.
  EXPECT_EQ(res.oracle_runs, clean.oracle_runs);
  EXPECT_EQ(res.phase_runs, clean.phase_runs);

  // Errors cost retries; the flip shows up as a vote disagreement; the
  // rejection is classified transient because a retry cleared it.
  EXPECT_EQ(res.retry_runs, 3u);
  EXPECT_GE(res.corruption_detections, 2u);  // truncation + flip disagreement
  EXPECT_EQ(res.transient_rejections, 1u);
  EXPECT_EQ(res.physical_runs, res.oracle_runs + res.retry_runs + res.vote_runs);
}

struct KillCase {
  const char* phase;          // phase the kill lands in
  size_t completed_before;    // pipeline phases completed before it
};

TEST(NoisyAttack, DeathInEachPhaseYieldsPartialResultWithCheckpoint) {
  const attack::AttackResult& clean = clean_reference();
  ASSERT_EQ(clean.phase_runs.size(), 6u);

  // Cumulative logical cache-miss count up to the start of each phase; the
  // pair_voting() physical window of phase p is [2*cum[p], 2*cum[p+1]).
  std::vector<size_t> cum = {0};
  for (const auto& [name, runs] : clean.phase_runs) cum.push_back(cum.back() + runs);

  const KillCase cases[] = {{"setup", 0},   {"z-path", 0},  {"beta", 1},
                            {"feedback", 2}, {"alpha2", 3}, {"extract", 4}};
  const std::vector<std::string> kPipelinePhases = {"z-path", "beta", "feedback", "alpha2",
                                                    "extract"};
  const fpga::System& sys = shared_system();
  for (size_t p = 0; p < 6; ++p) {
    SCOPED_TRACE(std::string("kill during ") + cases[p].phase);
    ASSERT_GT(clean.phase_runs[p].second, 0u);
    // Aim at the middle of the phase's physical window.
    const size_t kill_index = 2 * cum[p] + clean.phase_runs[p].second;

    attack::DeviceOracle device(sys, kHostIv, nullptr, 64);
    FaultyOracle oracle(device, FaultPlan().kill_at(kill_index));
    runtime::ProbeCache cache;
    attack::PipelineConfig cfg = cached_config(&cache);
    cfg.retry = pair_voting();
    attack::Attack attack(oracle, sys.golden.bytes, cfg);
    const attack::AttackResult res = attack.execute();

    // Contained: a partial result naming the phase, never a wrong key.
    EXPECT_FALSE(res.success);
    EXPECT_FALSE(res.key_confirmed);
    EXPECT_TRUE(res.partial);
    EXPECT_EQ(res.abort_error, ProbeError::kDead);
    EXPECT_NE(res.failure.find(cases[p].phase), std::string::npos) << res.failure;
    EXPECT_TRUE(oracle.dead());
    EXPECT_EQ(oracle.died_at(), kill_index);

    // The checkpoint records exactly the phases that finished before the
    // fault, and everything verified so far survives in the result.
    EXPECT_EQ(res.checkpoint.phase, cases[p].phase);
    ASSERT_LE(cases[p].completed_before, kPipelinePhases.size());
    EXPECT_EQ(res.checkpoint.completed,
              std::vector<std::string>(kPipelinePhases.begin(),
                                       kPipelinePhases.begin() +
                                           static_cast<long>(cases[p].completed_before)));
    if (cases[p].completed_before >= 1) {
      EXPECT_EQ(res.lut1.size(), 32u);
    }
    if (cases[p].completed_before >= 2) {
      EXPECT_GT(res.mux_patches, 0u);
    }
    if (cases[p].completed_before >= 3) {
      EXPECT_GE(res.feedback.size(), 32u);
    }

    // The checkpoint round-trips through JSON bit-identically.
    const auto back = attack::AttackCheckpoint::from_json(res.checkpoint.to_json());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, res.checkpoint);

    // Paper-metric honesty even on the aborted run: the logical probes it
    // did spend are a prefix of the clean run's.
    EXPECT_LE(res.oracle_runs, clean.oracle_runs);
    EXPECT_EQ(res.physical_runs, res.oracle_runs + res.retry_runs + res.vote_runs);
  }
}

// Property-based accounting check: for *any* survivable noise profile and
// voting policy, (a) the run-count ledger balances exactly —
// physical_runs == oracle_runs + retry_runs + vote_runs == what the oracle
// itself counted — and (b) the paper metric (oracle_runs, phase split,
// faulty keystream) is bit-identical to the noiseless reference.  The
// profiles are drawn from a seeded RNG so failures replay deterministically.
TEST(NoisyAttack, PropertyRandomProfilesBalanceTheRunLedger) {
  const attack::AttackResult& clean = clean_reference();
  ASSERT_TRUE(clean.success) << clean.failure;
  const fpga::System& sys = shared_system();

  Rng rng(0xacc0u);
  auto uniform = [&rng](double hi) {
    return hi * static_cast<double>(rng.next_u32() % 10000) / 10000.0;
  };
  for (int trial = 0; trial < 4; ++trial) {
    NoiseProfile noise;
    noise.transient_reject = uniform(0.04);
    noise.bit_flip = uniform(2e-3);
    noise.truncate = uniform(0.01);
    noise.timeout = uniform(0.01);
    noise.death = 0;  // survivable by construction; death is covered below
    noise.seed = rng.next_u64();
    // voting(3) or voting(4): policies whose read budget confirms every
    // probe with overwhelming probability at these noise rates, so the
    // success branch of the property is deterministic in practice.
    const unsigned votes = 3 + rng.next_u32() % 2;
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << ": reject=" << noise.transient_reject
                 << " flip=" << noise.bit_flip << " truncate=" << noise.truncate
                 << " timeout=" << noise.timeout << " seed=" << noise.seed
                 << " votes=" << votes);

    attack::DeviceOracle device(sys, kHostIv, nullptr, 64);
    FaultyOracle oracle(device, noise);
    runtime::ProbeCache cache;
    attack::PipelineConfig cfg = cached_config(&cache);
    cfg.retry = runtime::RetryPolicy::voting(votes);
    attack::Attack attack(oracle, sys.golden.bytes, cfg);
    const attack::AttackResult res = attack.execute();

    // (a) The ledger balances against the oracle's own count.
    EXPECT_EQ(res.physical_runs, res.oracle_runs + res.retry_runs + res.vote_runs);
    EXPECT_EQ(res.physical_runs, oracle.runs());

    // (b) Noise never moves the paper metric.
    ASSERT_TRUE(res.success) << res.failure;
    EXPECT_EQ(res.secrets.key, sys.options.key);
    EXPECT_EQ(res.oracle_runs, clean.oracle_runs);
    EXPECT_EQ(res.cache_hits, clean.cache_hits);
    EXPECT_EQ(res.probe_calls, clean.probe_calls);
    EXPECT_EQ(res.phase_runs, clean.phase_runs);
    EXPECT_EQ(res.faulty_keystream, clean.faulty_keystream);
  }

  // Death case: success is not guaranteed, the ledger invariant still is.
  for (int trial = 0; trial < 2; ++trial) {
    NoiseProfile noise = NoiseProfile::mild();
    noise.death = 2e-4;
    noise.seed = rng.next_u64();
    SCOPED_TRACE(::testing::Message() << "death trial " << trial << " seed=" << noise.seed);

    attack::DeviceOracle device(sys, kHostIv, nullptr, 64);
    FaultyOracle oracle(device, noise);
    runtime::ProbeCache cache;
    attack::PipelineConfig cfg = cached_config(&cache);
    cfg.retry = runtime::RetryPolicy::voting(3);
    attack::Attack attack(oracle, sys.golden.bytes, cfg);
    const attack::AttackResult res = attack.execute();

    EXPECT_EQ(res.physical_runs, res.oracle_runs + res.retry_runs + res.vote_runs);
    EXPECT_EQ(res.physical_runs, oracle.runs());
    if (res.success) {
      EXPECT_EQ(res.oracle_runs, clean.oracle_runs);
      EXPECT_EQ(res.faulty_keystream, clean.faulty_keystream);
    } else {
      EXPECT_TRUE(res.partial);
      // An aborted run spent a prefix of the clean run's logical probes.
      EXPECT_LE(res.oracle_runs, clean.oracle_runs);
    }
  }
}

TEST(ProbeCacheGuard, CorruptFirstReadNeverPoisonsTheCache) {
  // Satellite regression: physical run 0 (the very first read of the golden
  // baseline probe) comes back with one flipped keystream bit.  Voting
  // rejects the corrupt read; only the agreed value may enter the cache.
  const attack::AttackResult& clean = clean_reference();
  const fpga::System& sys = shared_system();

  runtime::ProbeCache cache;
  attack::DeviceOracle device(sys, kHostIv, nullptr, 64);
  FaultyOracle oracle(device, FaultPlan().flip_at(0, 0, 9));
  attack::PipelineConfig cfg = cached_config(&cache);
  cfg.retry = pair_voting();
  attack::Attack noisy(oracle, sys.golden.bytes, cfg);
  const attack::AttackResult first = noisy.execute();
  ASSERT_TRUE(first.success) << first.failure;
  EXPECT_EQ(oracle.injected_flips(), 1u);
  EXPECT_GE(first.corruption_detections, 1u);

  // A second attack shares the warmed cache with a clean single-shot oracle:
  // if the flipped read had been stored, its very first cache hit would be
  // the corrupt baseline and the pipeline would diverge from the reference.
  attack::DeviceOracle verifier(sys, kHostIv, nullptr, 64);
  attack::Attack replay(verifier, sys.golden.bytes, cached_config(&cache));
  const attack::AttackResult second = replay.execute();
  ASSERT_TRUE(second.success) << second.failure;
  EXPECT_EQ(second.secrets.key, sys.options.key);
  EXPECT_EQ(second.faulty_keystream, clean.faulty_keystream);
  // Everything the first attack probed is served from the cache.
  EXPECT_EQ(second.oracle_runs, 0u);
  EXPECT_EQ(second.probe_calls, second.cache_hits);
}

TEST(ProbeCacheGuard, FatalOutcomesAreNeverStored) {
  // A board that dies on the very first probe must leave the shared cache
  // empty: kDead is not a result, so a later attack re-probes everything.
  const attack::AttackResult& clean = clean_reference();
  const fpga::System& sys = shared_system();

  runtime::ProbeCache cache;
  attack::DeviceOracle device(sys, kHostIv, nullptr, 64);
  FaultyOracle oracle(device, FaultPlan().kill_at(0));
  attack::PipelineConfig cfg = cached_config(&cache);
  cfg.retry = pair_voting();
  attack::Attack doomed(oracle, sys.golden.bytes, cfg);
  const attack::AttackResult first = doomed.execute();
  EXPECT_FALSE(first.success);
  EXPECT_TRUE(first.partial);
  EXPECT_EQ(first.checkpoint.phase, "setup");

  attack::DeviceOracle fresh(sys, kHostIv, nullptr, 64);
  attack::Attack retry_attack(fresh, sys.golden.bytes, cached_config(&cache));
  const attack::AttackResult second = retry_attack.execute();
  ASSERT_TRUE(second.success) << second.failure;
  // Identical miss/hit split to a cold-cache clean run: nothing bogus was
  // pre-seeded by the dead board.
  EXPECT_EQ(second.oracle_runs, clean.oracle_runs);
  EXPECT_EQ(second.cache_hits, clean.cache_hits);
}

TEST(AttackCheckpointTest, SettledProbesSurviveDeathAndResumeNeverRepaysThem) {
  // Satellite acceptance: a device death mid-phase leaves every settled,
  // cacheable probe outcome in the checkpoint; a resumed attack pre-seeds
  // its cache from them, so the dead board's completed work is never
  // re-bought on the replacement board.
  const attack::AttackResult& clean = clean_reference();
  const fpga::System& sys = shared_system();
  const size_t setup_misses = clean.phase_runs[0].second;

  attack::DeviceOracle device(sys, kHostIv, nullptr, 64);
  FaultyOracle oracle(device, FaultPlan().kill_at(2 * setup_misses + 100));
  runtime::ProbeCache doomed_cache;
  attack::PipelineConfig cfg = cached_config(&doomed_cache);
  cfg.retry = pair_voting();
  attack::Attack doomed(oracle, sys.golden.bytes, cfg);
  const attack::AttackResult first = doomed.execute();
  ASSERT_FALSE(first.success);
  ASSERT_TRUE(first.partial);

  const attack::AttackCheckpoint& cp = first.checkpoint;
  ASSERT_GT(cp.probes.size(), 0u);
  // The settled probes round-trip through JSON with the rest of the state.
  const auto back = attack::AttackCheckpoint::from_json(cp.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, cp);

  // Resume on a fresh board with a cold cache: every checkpointed probe is
  // answered from the checkpoint, everything else is re-probed — the sum is
  // exactly the clean run's miss/hit split.
  attack::DeviceOracle fresh(sys, kHostIv, nullptr, 64);
  runtime::ProbeCache resumed_cache;
  attack::PipelineConfig resume_cfg = cached_config(&resumed_cache);
  resume_cfg.resume = &cp;
  attack::Attack resumed_attack(fresh, sys.golden.bytes, resume_cfg);
  const attack::AttackResult resumed = resumed_attack.execute();
  ASSERT_TRUE(resumed.success) << resumed.failure;
  EXPECT_EQ(resumed.secrets.key, sys.options.key);
  EXPECT_EQ(resumed.faulty_keystream, clean.faulty_keystream);
  EXPECT_EQ(resumed.oracle_runs + cp.probes.size(), clean.oracle_runs);
  EXPECT_EQ(resumed.cache_hits, clean.cache_hits + cp.probes.size());
}

TEST(AttackCheckpointTest, JsonRoundTripPreservesEveryField) {
  attack::AttackCheckpoint cp;
  cp.phase = "feedback";
  cp.completed = {"z-path", "beta"};
  cp.load_active_high = false;

  attack::ZPathLut z;
  z.match.byte_index = 12345;
  z.match.matched_table = logic::TruthTable6(0xfedcba9876543210ull);
  z.match.perm = {5, 4, 3, 2, 1, 0};
  z.match.order = {3, 1, 2, 0};
  z.bit = 31;
  z.trio = {7, 9, 11};
  z.s0_var = 2;
  cp.lut1.push_back(z);

  attack::FeedbackLut f;
  f.byte_index = 99;
  f.order = {0, 2, 1, 3};
  f.half = 1;
  f.zero_all = false;
  f.zero_vars = {1, 4, 5};
  f.bit = 17;
  cp.feedback.push_back(f);

  attack::AttackCheckpoint::BetaPatch b;
  b.byte_index = 777;
  b.order = {1, 0, 3, 2};
  b.init = 0xffffffffffffff01ull;  // > 2^53: must survive JSON losslessly
  cp.beta.push_back(b);

  const auto back = attack::AttackCheckpoint::from_json(cp.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, cp);
  EXPECT_EQ(back->beta[0].init, 0xffffffffffffff01ull);

  EXPECT_FALSE(attack::AttackCheckpoint::from_json("not json").has_value());
  EXPECT_FALSE(attack::AttackCheckpoint::from_json("{\"version\": 99}").has_value());
}

}  // namespace
}  // namespace sbm
