// Countermeasure tests (Section VII): half-table searching, the collapse of
// Table II candidates on the protected bitstream (Table VI), and the
// combinatorial security bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "attack/countermeasure.h"
#include "attack/scan.h"
#include "bitstream/patcher.h"
#include "common/rng.h"
#include "fpga/system.h"

namespace sbm::attack {
namespace {

using logic::TruthTable6;

TEST(HalfSearch, FindsAPlantedXorHalf) {
  // Build a dual table: low half = a2 ^ a4, high half = arbitrary.
  const TruthTable6 x = TruthTable6::var(1) ^ TruthTable6::var(3);
  const u64 init = u64{x.half(0)} | (0xdeadbeefull << 32);
  FindLutOptions opt;
  opt.offset_d = 101;
  std::vector<u8> bytes(1024, 0);
  bitstream::write_lut_init(bytes, 40, opt.offset_d, bitstream::device_chunk_orders()[0], init);
  const auto hits = find_xor2_halves(bytes, opt);
  ASSERT_FALSE(hits.empty());
  bool found = false;
  for (const auto& h : hits) found = found || (h.byte_index == 40 && h.o5_half);
  EXPECT_TRUE(found);
}

TEST(HalfSearch, FindsHighHalfToo) {
  const TruthTable6 x = TruthTable6::var(0) ^ TruthTable6::var(2);
  const u64 init = 0x13577531ull | (u64{x.half(0)} << 32);
  FindLutOptions opt;
  opt.offset_d = 101;
  std::vector<u8> bytes(1024, 0);
  bitstream::write_lut_init(bytes, 8, opt.offset_d, bitstream::device_chunk_orders()[1], init);
  const auto hits = find_xor2_halves(bytes, opt);
  bool found = false;
  for (const auto& h : hits) found = found || (h.byte_index == 8 && !h.o5_half);
  EXPECT_TRUE(found);
}

TEST(HalfSearch, RangeConstraintLimitsHits) {
  const TruthTable6 x = TruthTable6::var(0) ^ TruthTable6::var(1);
  FindLutOptions opt;
  opt.offset_d = 101;
  std::vector<u8> bytes(2048, 0);
  const u64 init = u64{x.half(0)} | (u64{x.half(0)} << 32);
  bitstream::write_lut_init(bytes, 10, opt.offset_d, bitstream::device_chunk_orders()[0], init);
  bitstream::write_lut_init(bytes, 1200, opt.offset_d, bitstream::device_chunk_orders()[0],
                            init);
  auto positions = [](const std::vector<HalfMatch>& hits) {
    std::set<size_t> out;
    for (const auto& h : hits) out.insert(h.byte_index);
    return out;
  };
  // Both planted positions appear unconstrained; the range constraint (the
  // paper's frame-limited search) keeps only positions inside the window.
  EXPECT_TRUE(positions(find_xor2_halves(bytes, opt)).count(10));
  EXPECT_TRUE(positions(find_xor2_halves(bytes, opt)).count(1200));
  const auto lo = positions(find_xor2_halves(bytes, opt, 0, 600));
  EXPECT_TRUE(lo.count(10));
  for (const size_t l : lo) EXPECT_LT(l, 600u);
  const auto hi = positions(find_xor2_halves(bytes, opt, 600));
  EXPECT_TRUE(hi.count(1200));
  for (const size_t l : hi) EXPECT_GE(l, 600u);
}

TEST(HalfSearch, PermuteHalf5MatchesFullPermute) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const u32 half = rng.next_u32();
    const logic::InputPermutation perm = {2, 0, 4, 1, 3, 5};
    const TruthTable6 full(u64{half} | (u64{half} << 32));
    EXPECT_EQ(permute_half5(half, perm), full.permuted(perm).half(0));
  }
}

TEST(Complexity, PaperBinomial171Choose32) {
  // Section VII-C: C(171, 32) ~ 4.9e34 ~ 2^115.
  EXPECT_NEAR(log2_binomial(171, 32), 115.25, 0.5);
  EXPECT_NEAR(std::exp2(log2_binomial(171, 32) - 115.0), 1.19, 0.5);
}

TEST(Complexity, BinomialEdgeCases) {
  EXPECT_DOUBLE_EQ(log2_binomial(10, 0), 0.0);
  EXPECT_DOUBLE_EQ(log2_binomial(10, 10), 0.0);
  EXPECT_NEAR(log2_binomial(4, 2), std::log2(6.0), 1e-9);
  EXPECT_EQ(log2_binomial(3, 5), -std::numeric_limits<double>::infinity());
}

TEST(Complexity, LemmaBoundDominatesBinomial) {
  // Lemma 1: C(m+r, m) <= (e(m+r)/m)^m.
  for (unsigned m : {8u, 16u, 32u}) {
    for (unsigned r : {32u, 96u, 160u}) {
      EXPECT_GE(log2_lemma_bound(m, r), log2_binomial(m + r, m) - 1e-6);
    }
  }
}

TEST(Complexity, PaperDecoyRatio) {
  // Section VII-A: x >= 16/e - 1 ~ 4.886 for m = 32 and 128-bit security.
  EXPECT_NEAR(min_decoy_ratio(32, 128.0), 16.0 / std::exp(1.0) - 1.0, 1e-9);
  EXPECT_NEAR(min_decoy_ratio(32, 128.0), 4.886, 0.01);
  // And the implemented design uses x = 5, which clears the bound.
  EXPECT_GT(5.0, min_decoy_ratio(32, 128.0));
  EXPECT_GE(log2_lemma_bound(32, 5 * 32), 128.0);
}

// ---- protected-system scans (Table VI analog) ------------------------------

class ProtectedScan : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fpga::SystemOptions opt;
    opt.protected_variant = true;
    protected_ = new fpga::System(fpga::build_system(opt));
    plain_ = new fpga::System(fpga::build_system());
  }
  static void TearDownTestSuite() {
    delete protected_;
    delete plain_;
    protected_ = nullptr;
    plain_ = nullptr;
  }
  static fpga::System* protected_;
  static fpga::System* plain_;
};
fpga::System* ProtectedScan::protected_ = nullptr;
fpga::System* ProtectedScan::plain_ = nullptr;

TEST_F(ProtectedScan, FeedbackCandidatesCollapseToZero) {
  // Table VI: every feedback-path candidate of Table II returns n = 0 on
  // the protected bitstream.
  for (const auto& fc : scan_family(protected_->golden.bytes, logic::table2_family())) {
    if (fc.candidate.path == logic::TargetPath::kFeedback) {
      EXPECT_EQ(fc.count(), 0u) << fc.candidate.name;
    }
  }
}

TEST_F(ProtectedScan, NoKeystreamCandidateReaches32) {
  // The z-path LUT1 population disappears as whole-table matches too.
  for (const auto& fc : scan_family(protected_->golden.bytes, logic::table2_family())) {
    if (fc.candidate.path == logic::TargetPath::kKeystream) {
      EXPECT_LT(fc.count(), 32u) << fc.candidate.name;
    }
  }
}

TEST_F(ProtectedScan, Xor2HalfCandidatesExplode) {
  // Section VII-B: the only remaining handle is "2-input XOR in one half",
  // and the countermeasure floods it: 32 targets + 160 decoys + natural
  // XOR2 covers.
  const auto prot = find_xor2_halves(protected_->golden.bytes);
  EXPECT_GE(prot.size(), 192u);
  // Exhaustively selecting the 32 targets among the (unprunable) candidates
  // costs at least C(n - 32, 32) tries; it must land beyond 2^80.
  const double log2_tries =
      log2_binomial(static_cast<unsigned>(prot.size()) - 32, 32);
  EXPECT_GE(log2_tries, 80.0);
}

TEST_F(ProtectedScan, TargetsAreHiddenAmongTheXorHalves) {
  // Every true target LUT is one of the XOR2-half candidates — present but
  // indistinguishable.
  const auto truth = protected_->target_luts();
  std::set<size_t> hits;
  for (const auto& h : find_xor2_halves(protected_->golden.bytes)) hits.insert(h.byte_index);
  size_t covered = 0;
  std::set<size_t> target_positions;
  for (const auto& t : truth) {
    const auto& lut = protected_->mapped.luts[t.lut_index];
    if (lut.root != protected_->design.target_v[t.bit]) continue;  // trivial-cut LUT only
    if (target_positions.insert(t.byte_index).second) covered += hits.count(t.byte_index);
  }
  EXPECT_EQ(covered, target_positions.size());
}

}  // namespace
}  // namespace sbm::attack
