// Unit tests for the common bit/hex/rng utilities.
#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/hex.h"
#include "common/rng.h"

namespace sbm {
namespace {

TEST(Bits, BitOfExtractsEachPosition) {
  const u64 w = 0x8000000000000001ull;
  EXPECT_EQ(bit_of(w, 0), 1u);
  EXPECT_EQ(bit_of(w, 1), 0u);
  EXPECT_EQ(bit_of(w, 63), 1u);
}

TEST(Bits, WithBitSetsAndClears) {
  u64 w = 0;
  w = with_bit(w, 5, 1);
  EXPECT_EQ(w, 32u);
  w = with_bit(w, 5, 0);
  EXPECT_EQ(w, 0u);
  // Setting an already-set bit is idempotent.
  w = with_bit(with_bit(w, 17, 1), 17, 1);
  EXPECT_EQ(bit_of(w, 17), 1u);
}

TEST(Bits, MsbByteOrdering) {
  const u32 w = 0x12345678u;
  EXPECT_EQ(msb_byte(w, 0), 0x12);
  EXPECT_EQ(msb_byte(w, 1), 0x34);
  EXPECT_EQ(msb_byte(w, 2), 0x56);
  EXPECT_EQ(msb_byte(w, 3), 0x78);
  EXPECT_EQ(from_msb_bytes(0x12, 0x34, 0x56, 0x78), w);
}

TEST(Bits, BigEndianRoundTrip32) {
  u8 buf[4];
  store_be32(buf, 0xdeadbeefu);
  EXPECT_EQ(buf[0], 0xde);
  EXPECT_EQ(buf[3], 0xef);
  EXPECT_EQ(load_be32(buf), 0xdeadbeefu);
}

TEST(Bits, BigEndianRoundTrip64) {
  u8 buf[8];
  store_be64(buf, 0x0123456789abcdefull);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0xef);
  EXPECT_EQ(load_be64(buf), 0x0123456789abcdefull);
}

TEST(Bits, Parity32) {
  EXPECT_EQ(parity32(0), 0u);
  EXPECT_EQ(parity32(1), 1u);
  EXPECT_EQ(parity32(3), 0u);
  EXPECT_EQ(parity32(0xffffffffu), 0u);
  EXPECT_EQ(parity32(0x7fffffffu), 1u);
}

TEST(Hex, FormatsPaperStyle) {
  EXPECT_EQ(hex32(0xa1fb4788u), "a1fb4788");
  EXPECT_EQ(hex32(0), "00000000");
  EXPECT_EQ(hex32(0xffffffffu), "ffffffff");
}

TEST(Hex, Parse32RoundTrip) {
  for (u32 w : {0u, 1u, 0xdeadbeefu, 0xffffffffu, 0x00000080u}) {
    EXPECT_EQ(parse_hex32(hex32(w)), w);
  }
}

TEST(Hex, Parse32RejectsBadInput) {
  EXPECT_THROW(parse_hex32("123"), std::invalid_argument);
  EXPECT_THROW(parse_hex32("123456789"), std::invalid_argument);
  EXPECT_THROW(parse_hex32("1234567g"), std::invalid_argument);
}

TEST(Hex, BytesRoundTrip) {
  const std::vector<u8> bytes = {0x00, 0xff, 0x12, 0xab};
  EXPECT_EQ(hex_bytes(bytes), "00ff12ab");
  EXPECT_EQ(parse_hex_bytes("00ff12ab"), bytes);
  EXPECT_THROW(parse_hex_bytes("abc"), std::invalid_argument);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, BitsLookBalanced) {
  Rng rng(123);
  int ones = 0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) ones += rng.next_bool() ? 1 : 0;
  EXPECT_GT(ones, kSamples / 2 - 500);
  EXPECT_LT(ones, kSamples / 2 + 500);
}

}  // namespace
}  // namespace sbm
