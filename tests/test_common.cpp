// Unit tests for the common bit/hex/rng utilities and the JSON layer
// (round-trip fuzzing, fixpoint property, malformed-input rejection).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/bits.h"
#include "common/hex.h"
#include "common/json.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace sbm {
namespace {

TEST(Bits, BitOfExtractsEachPosition) {
  const u64 w = 0x8000000000000001ull;
  EXPECT_EQ(bit_of(w, 0), 1u);
  EXPECT_EQ(bit_of(w, 1), 0u);
  EXPECT_EQ(bit_of(w, 63), 1u);
}

TEST(Bits, WithBitSetsAndClears) {
  u64 w = 0;
  w = with_bit(w, 5, 1);
  EXPECT_EQ(w, 32u);
  w = with_bit(w, 5, 0);
  EXPECT_EQ(w, 0u);
  // Setting an already-set bit is idempotent.
  w = with_bit(with_bit(w, 17, 1), 17, 1);
  EXPECT_EQ(bit_of(w, 17), 1u);
}

TEST(Bits, MsbByteOrdering) {
  const u32 w = 0x12345678u;
  EXPECT_EQ(msb_byte(w, 0), 0x12);
  EXPECT_EQ(msb_byte(w, 1), 0x34);
  EXPECT_EQ(msb_byte(w, 2), 0x56);
  EXPECT_EQ(msb_byte(w, 3), 0x78);
  EXPECT_EQ(from_msb_bytes(0x12, 0x34, 0x56, 0x78), w);
}

TEST(Bits, BigEndianRoundTrip32) {
  u8 buf[4];
  store_be32(buf, 0xdeadbeefu);
  EXPECT_EQ(buf[0], 0xde);
  EXPECT_EQ(buf[3], 0xef);
  EXPECT_EQ(load_be32(buf), 0xdeadbeefu);
}

TEST(Bits, BigEndianRoundTrip64) {
  u8 buf[8];
  store_be64(buf, 0x0123456789abcdefull);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0xef);
  EXPECT_EQ(load_be64(buf), 0x0123456789abcdefull);
}

TEST(Bits, Parity32) {
  EXPECT_EQ(parity32(0), 0u);
  EXPECT_EQ(parity32(1), 1u);
  EXPECT_EQ(parity32(3), 0u);
  EXPECT_EQ(parity32(0xffffffffu), 0u);
  EXPECT_EQ(parity32(0x7fffffffu), 1u);
}

TEST(Hex, FormatsPaperStyle) {
  EXPECT_EQ(hex32(0xa1fb4788u), "a1fb4788");
  EXPECT_EQ(hex32(0), "00000000");
  EXPECT_EQ(hex32(0xffffffffu), "ffffffff");
}

TEST(Hex, Parse32RoundTrip) {
  for (u32 w : {0u, 1u, 0xdeadbeefu, 0xffffffffu, 0x00000080u}) {
    EXPECT_EQ(parse_hex32(hex32(w)), w);
  }
}

TEST(Hex, Parse32RejectsBadInput) {
  EXPECT_THROW(parse_hex32("123"), std::invalid_argument);
  EXPECT_THROW(parse_hex32("123456789"), std::invalid_argument);
  EXPECT_THROW(parse_hex32("1234567g"), std::invalid_argument);
}

TEST(Hex, BytesRoundTrip) {
  const std::vector<u8> bytes = {0x00, 0xff, 0x12, 0xab};
  EXPECT_EQ(hex_bytes(bytes), "00ff12ab");
  EXPECT_EQ(parse_hex_bytes("00ff12ab"), bytes);
  EXPECT_THROW(parse_hex_bytes("abc"), std::invalid_argument);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, BitsLookBalanced) {
  Rng rng(123);
  int ones = 0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) ones += rng.next_bool() ? 1 : 0;
  EXPECT_GT(ones, kSamples / 2 - 500);
  EXPECT_LT(ones, kSamples / 2 + 500);
}

// ---- JSON round-trip fuzzing -------------------------------------------

/// Random document generator for the round-trip fuzz: scalars draw from the
/// full range the writer can emit (64-bit integers, negative ints, %.17g
/// doubles, strings with escapes / control bytes / raw UTF-8), containers
/// nest to a bounded depth.  Roots are objects/arrays, like every artifact
/// the repo writes — which also makes every strict prefix of the text
/// invalid (the balancing close comes last).
JsonValue random_json(Rng& rng, int depth) {
  JsonValue v;
  const unsigned pick = rng.next_below(depth >= 4 ? 4 : 6);
  switch (pick) {
    case 0:
      v.kind = JsonValue::Kind::kNull;
      return v;
    case 1:
      v.kind = JsonValue::Kind::kBool;
      v.boolean = rng.next_bool();
      return v;
    case 2: {
      v.kind = JsonValue::Kind::kNumber;
      switch (rng.next_below(4)) {
        case 0: v.number = std::to_string(rng.next_u64()); break;
        case 1: v.number = "-" + std::to_string(rng.next_u32()); break;
        case 2: {
          char buf[40];
          std::snprintf(buf, sizeof buf, "%.17g",
                        static_cast<double>(rng.next_u32()) / 977.0);
          v.number = buf;
          break;
        }
        default: v.number = std::to_string(rng.next_below(100)) + "e-" +
                            std::to_string(rng.next_below(20));
      }
      return v;
    }
    case 3: {
      v.kind = JsonValue::Kind::kString;
      static const char pool[] = "ab\"\\\n\t\x01 {}[]:,\xc3\xa9z0-";
      const size_t len = rng.next_below(12);
      for (size_t i = 0; i < len; ++i) v.string += pool[rng.next_below(sizeof pool - 1)];
      return v;
    }
    case 4: {
      v.kind = JsonValue::Kind::kArray;
      const size_t n = rng.next_below(5);
      for (size_t i = 0; i < n; ++i) v.items.push_back(random_json(rng, depth + 1));
      return v;
    }
    default: {
      v.kind = JsonValue::Kind::kObject;
      const size_t n = rng.next_below(5);
      for (size_t i = 0; i < n; ++i) {
        v.members.emplace_back("k" + std::to_string(i) + std::string(i, '"'),
                               random_json(rng, depth + 1));
      }
      return v;
    }
  }
}

/// One fuzz iteration: parse -> dump must be a fixpoint (dump of the
/// re-parse is byte-identical), per the JsonValue::dump contract.
void expect_roundtrip_fixpoint(const std::string& text) {
  const auto first = parse_json(text);
  ASSERT_TRUE(first.has_value()) << text;
  const std::string once = first->dump();
  const auto second = parse_json(once);
  ASSERT_TRUE(second.has_value()) << once;
  EXPECT_EQ(second->dump(), once) << text;
}

TEST(JsonFuzz, RandomDocumentsReachRoundTripFixpoint) {
  Rng rng(0xf122);
  for (int trial = 0; trial < 300; ++trial) {
    JsonValue root = random_json(rng, 3);  // force a container root
    if (!root.is_object() && !root.is_array()) {
      JsonValue wrap;
      wrap.kind = JsonValue::Kind::kArray;
      wrap.items.push_back(std::move(root));
      root = std::move(wrap);
    }
    expect_roundtrip_fixpoint(root.dump());
  }
}

TEST(JsonFuzz, RawNumberTokensSurviveBeyondDoublePrecision) {
  // 2^64-1 and a >53-bit odd integer are not representable as doubles; the
  // raw-token contract keeps them bit-exact through parse -> dump -> parse.
  const std::string text = "{\"max\":18446744073709551615,\"odd\":9007199254740993}";
  const auto v = parse_json(text);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->dump(), text);
  EXPECT_EQ(v->find("max")->as_u64(), 18446744073709551615ull);
  EXPECT_EQ(v->find("odd")->as_u64(), 9007199254740993ull);
}

TEST(JsonFuzz, WriterOutputIsAlwaysAFixpointSeed) {
  // Randomized JsonWriter documents (the artifact-producing side) must all
  // round-trip through the parser and reach the dump fixpoint.
  Rng rng(0x3133);
  for (int trial = 0; trial < 50; ++trial) {
    JsonWriter w;
    w.begin_object();
    w.field("seed", rng.next_u64());
    w.field("ratio", static_cast<double>(rng.next_u32()) / 3.0);
    w.field("name", std::string("trial\n\"") + std::to_string(trial));
    w.key("runs").begin_array();
    const size_t n = rng.next_below(6);
    for (size_t i = 0; i < n; ++i) w.value(rng.next_u64());
    w.end_array();
    w.key("nested").begin_object().field("ok", rng.next_bool()).end_object();
    w.end_object();
    expect_roundtrip_fixpoint(w.str());
  }
}

TEST(JsonFuzz, MetricsAndTracePayloadsRoundTrip) {
  // The new obs artifacts are JSON documents too: snapshot and trace output
  // must parse and reach the dump fixpoint.
  const obs::Mode saved = obs::mode();
  obs::set_mode(obs::Mode::kAll);
  obs::MetricsRegistry::global().counter("jsonfuzz.counter").add(41);
  obs::MetricsRegistry::global().gauge("jsonfuzz.gauge").set(17);
  obs::MetricsRegistry::global().histogram("jsonfuzz.hist").observe(1023);
  {
    obs::Span span("jsonfuzz", "payload", "arg", 7);
    obs::Tracer::global().instant("jsonfuzz", "marker", {{"x", 1}});
  }
  const std::string metrics = obs::MetricsRegistry::global().snapshot().to_json();
  const std::string trace = obs::Tracer::global().to_chrome_json();
  obs::set_mode(saved);

  expect_roundtrip_fixpoint(metrics);
  expect_roundtrip_fixpoint(trace);
  const auto parsed = parse_json(trace);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_NE(parsed->find("traceEvents"), nullptr);
}

TEST(JsonFuzz, EveryStrictPrefixOfAValidDocumentIsRejected) {
  Rng rng(0x9ef1);
  for (int trial = 0; trial < 20; ++trial) {
    JsonValue root = random_json(rng, 4);
    JsonValue wrap;
    wrap.kind = JsonValue::Kind::kObject;
    wrap.members.emplace_back("payload", std::move(root));
    const std::string text = wrap.dump();
    for (size_t len = 0; len < text.size(); ++len) {
      EXPECT_FALSE(parse_json(text.substr(0, len)).has_value())
          << "prefix of length " << len << " of " << text;
    }
  }
}

TEST(JsonFuzz, MalformedInputsAreRejectedNotCrashed) {
  const char* rejected[] = {
      "", " ", "{", "[", "]", "}", "{]", "[}", "{\"a\"}", "{\"a\":}", "{\"a\":1,}",
      "[1,]", "[,]", "{,}", "1 2", "\"unterminated", "truth", "nul", "+", "-",
      "{\"a\" 1}", "[1 2]", "\"bad\\x\"", "\"\\u12g4\"", "{\"a\":1}extra", "--",
  };
  for (const char* text : rejected) {
    EXPECT_FALSE(parse_json(text).has_value()) << "accepted: " << text;
  }
  // 64-deep nesting is the documented bound; beyond it the parser refuses
  // rather than recursing without limit.
  EXPECT_TRUE(parse_json(std::string(64, '[') + std::string(64, ']')).has_value());
  EXPECT_FALSE(parse_json(std::string(80, '[') + std::string(80, ']')).has_value());

  // Byte-flip sweep: corrupting one byte of a valid document must never
  // crash — each position either still parses or is cleanly rejected.
  const std::string base =
      "{\"a\":[1,-2.5e3,true,null,\"s\\\"t\\n\"],\"b\":{\"c\":18446744073709551615}}";
  ASSERT_TRUE(parse_json(base).has_value());
  Rng rng(0xb17f);
  for (size_t pos = 0; pos < base.size(); ++pos) {
    std::string mutated = base;
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1u << rng.next_below(7)));
    (void)parse_json(mutated);  // outcome unspecified; absence of UB is the test
  }
}

}  // namespace
}  // namespace sbm
