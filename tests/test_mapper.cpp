// Technology-mapper, packing and STA tests.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/rng.h"
#include "harness.h"
#include "mapper/mapper.h"
#include "mapper/packing.h"
#include "mapper/sta.h"
#include "netlist/snow3g_design.h"

namespace sbm::mapper {
namespace {

using netlist::Network;
using netlist::NodeId;
using netlist::NodeKind;
using netlist::Word;

TEST(Mapper, SingleLutForSmallCone) {
  Network net;
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId c = net.add_input("c");
  const NodeId g = net.add_gate(NodeKind::kXor, net.add_gate(NodeKind::kXor, a, b), c);
  net.add_output("o", g);
  const LutNetwork mapped = map_network(net);
  ASSERT_EQ(mapped.lut_count(), 1u);
  EXPECT_EQ(mapped.luts[0].inputs.size(), 3u);
  // The LUT computes XOR3 over its inputs.
  EXPECT_EQ(mapped.luts[0].function,
            logic::TruthTable6::var(0) ^ logic::TruthTable6::var(1) ^ logic::TruthTable6::var(2));
}

TEST(Mapper, WideXorNeedsTwoLevels) {
  Network net;
  std::vector<NodeId> ins;
  for (int i = 0; i < 9; ++i) ins.push_back(net.add_input("i" + std::to_string(i)));
  net.add_output("o", net.xor_tree(ins));
  const LutNetwork mapped = map_network(net);
  EXPECT_GE(mapped.lut_count(), 2u);
  const MappingStats st = mapping_stats(net, mapped);
  EXPECT_EQ(st.max_depth, 2u);
}

TEST(Mapper, InvertersAreAlwaysAbsorbed) {
  Network net;
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId g = net.add_gate(NodeKind::kAnd, net.add_not(a), b);
  net.add_output("o", g);
  const LutNetwork mapped = map_network(net);
  ASSERT_EQ(mapped.lut_count(), 1u);
  for (const NodeId in : mapped.luts[0].inputs) {
    EXPECT_NE(net.node(in).kind, NodeKind::kNot);
  }
}

TEST(Mapper, KeepNodeGetsTrivialCut) {
  Network net;
  const NodeId a = net.add_input("a");
  const NodeId b = net.add_input("b");
  const NodeId c = net.add_input("c");
  const NodeId x = net.add_gate(NodeKind::kXor, a, b);
  net.set_keep(x);
  const NodeId g = net.add_gate(NodeKind::kAnd, x, c);
  net.add_output("o", g);
  const LutNetwork mapped = map_network(net);
  // x must be its own root implementing exactly a^b, and g's LUT must use x
  // as a leaf rather than absorbing it.
  ASSERT_TRUE(mapped.is_root(x));
  const MappedLut& xl = mapped.luts[mapped.lut_of_root.at(x)];
  EXPECT_EQ(xl.inputs.size(), 2u);
  EXPECT_EQ(xl.function, logic::TruthTable6::var(0) ^ logic::TruthTable6::var(1));
  const MappedLut& gl = mapped.luts[mapped.lut_of_root.at(g)];
  EXPECT_NE(std::find(gl.inputs.begin(), gl.inputs.end(), x), gl.inputs.end());
}

class MappedEquivalence : public ::testing::TestWithParam<u64> {};

TEST_P(MappedEquivalence, LutNetworkMatchesSoftwareModel) {
  Rng rng(GetParam());
  const snow3g::Key k = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  const snow3g::Iv iv = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  auto design = netlist::build_snow3g_design();
  const LutNetwork mapped = map_network(design.net);
  LutSimulator sim(design.net, mapped);
  const std::vector<u32> hw = sbm::testing::run_design(design, sim, k, iv, 10);
  snow3g::Snow3g ref(k, iv);
  EXPECT_EQ(hw, ref.keystream(10));
}

TEST_P(MappedEquivalence, PackedDesignStillMatches) {
  Rng rng(GetParam() + 77);
  const snow3g::Key k = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  const snow3g::Iv iv = {rng.next_u32(), rng.next_u32(), rng.next_u32(), rng.next_u32()};
  auto design = netlist::build_snow3g_design();
  const PlacedDesign placed = pack_and_place(map_network(design.net));
  LutSimulator sim(design.net, placed.mapped);
  const std::vector<u32> hw = sbm::testing::run_design(design, sim, k, iv, 8);
  snow3g::Snow3g ref(k, iv);
  EXPECT_EQ(hw, ref.keystream(8));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MappedEquivalence, ::testing::Values(1, 2, 3));

TEST(Mapper, ProtectedMappingKeepsTargetsAsRoots) {
  auto design = netlist::build_protected_snow3g_design();
  const LutNetwork mapped = map_network(design.net);
  for (const NodeId v : design.target_v) {
    ASSERT_TRUE(mapped.is_root(v));
    const MappedLut& lut = mapped.luts[mapped.lut_of_root.at(v)];
    EXPECT_LE(lut.inputs.size(), 2u);
  }
  // No other LUT may cover a kept node internally: every LUT referencing a
  // kept node does so only through its input list.
  std::unordered_set<NodeId> kept;
  for (NodeId id = 0; id < design.net.node_count(); ++id) {
    if (design.net.node(id).keep) kept.insert(id);
  }
  for (const MappedLut& lut : mapped.luts) {
    if (kept.count(lut.root)) continue;
    // Walk the covered cone and assert no kept interior node.
    std::set<NodeId> leaves(lut.inputs.begin(), lut.inputs.end());
    std::vector<NodeId> stack{lut.root};
    std::set<NodeId> seen;
    while (!stack.empty()) {
      const NodeId id = stack.back();
      stack.pop_back();
      if (!seen.insert(id).second || leaves.count(id)) continue;
      EXPECT_FALSE(kept.count(id)) << "kept node absorbed into another LUT";
      const netlist::Node& n = design.net.node(id);
      if (n.kind == NodeKind::kAnd || n.kind == NodeKind::kOr || n.kind == NodeKind::kXor) {
        stack.push_back(n.fanin[0]);
        stack.push_back(n.fanin[1]);
      } else if (n.kind == NodeKind::kNot) {
        stack.push_back(n.fanin[0]);
      }
    }
  }
}

TEST(Mapper, NodeReuseAblationReducesCoverage) {
  auto design = netlist::build_snow3g_design();
  MapperOptions with_reuse;
  MapperOptions without;
  without.allow_node_reuse = false;
  const MappingStats a = mapping_stats(design.net, map_network(design.net, with_reuse));
  const MappingStats b = mapping_stats(design.net, map_network(design.net, without));
  // Without reuse, shared nodes become barriers: no duplication, so the
  // average cone is smaller or equal and depth never improves.
  EXPECT_GE(b.max_depth, a.max_depth);
}

TEST(Packing, DualSitesShareAtMostFivePins) {
  auto design = netlist::build_snow3g_design();
  const PlacedDesign placed = pack_and_place(map_network(design.net));
  size_t dual = 0;
  for (const PhysicalLut& p : placed.phys) {
    if (p.dual()) {
      ++dual;
      EXPECT_LE(p.pins.size(), 5u);
    } else {
      EXPECT_LE(p.pins.size(), 6u);
    }
  }
  EXPECT_GT(dual, 0u);
}

TEST(Packing, InitRoundTripsThroughFunctionFromInit) {
  auto design = netlist::build_snow3g_design();
  const PlacedDesign placed = pack_and_place(map_network(design.net));
  for (size_t site = 0; site < placed.phys.size(); ++site) {
    const u64 init = placed.init_of(site);
    const PhysicalLut& p = placed.phys[site];
    if (p.o6_lut >= 0) {
      EXPECT_EQ(placed.function_from_init(site, false, init),
                placed.mapped.luts[static_cast<size_t>(p.o6_lut)].function);
    }
    if (p.o5_lut >= 0) {
      EXPECT_EQ(placed.function_from_init(site, true, init),
                placed.mapped.luts[static_cast<size_t>(p.o5_lut)].function);
    }
  }
}

TEST(Packing, SiteOfLutIsInverseOfAssignment) {
  auto design = netlist::build_snow3g_design();
  const PlacedDesign placed = pack_and_place(map_network(design.net));
  for (size_t site = 0; site < placed.phys.size(); ++site) {
    const PhysicalLut& p = placed.phys[site];
    if (p.o6_lut >= 0) {
      const auto s = placed.site_of_lut(static_cast<size_t>(p.o6_lut));
      EXPECT_EQ(s.phys_index, site);
      EXPECT_FALSE(s.is_o5);
    }
    if (p.o5_lut >= 0) {
      const auto s = placed.site_of_lut(static_cast<size_t>(p.o5_lut));
      EXPECT_EQ(s.phys_index, site);
      EXPECT_TRUE(s.is_o5);
    }
  }
}

TEST(Packing, SliceTypesMixLAndM) {
  auto design = netlist::build_snow3g_design();
  const PlacedDesign placed = pack_and_place(map_network(design.net));
  size_t l = 0, m = 0;
  for (const SliceType t : placed.slice_types) (t == SliceType::kSliceL ? l : m)++;
  EXPECT_GT(l, 0u);
  EXPECT_GT(m, 0u);
}

TEST(Packing, UnconnectedPinsTieHigh) {
  // A 2-input single-output LUT whose INIT is overwritten with a function of
  // "absent" pins must behave as if those pins read 1.
  auto design = netlist::build_snow3g_design();
  PlacedDesign placed = pack_and_place(map_network(design.net), {false, 0x5eed, 3});
  // Find a single-output site with < 6 pins.
  for (size_t site = 0; site < placed.phys.size(); ++site) {
    const PhysicalLut& p = placed.phys[site];
    if (p.dual() || p.pins.size() >= 6) continue;
    const unsigned missing = static_cast<unsigned>(p.pins.size());
    // INIT = var(missing): with the pin tied high the function is const 1.
    const u64 init = logic::TruthTable6::var(missing).bits();
    EXPECT_EQ(placed.function_from_init(site, false, init), logic::TruthTable6::one());
    return;
  }
  GTEST_SKIP() << "no small single-output site found";
}

TEST(Sta, ChainDelayArithmetic) {
  // Deterministic 4-level LUT chain: keep markers pin each XOR into its own
  // LUT, so the register-to-register delay is exactly computable.
  Network net;
  const NodeId q = net.add_dff("q");
  NodeId x = q;
  constexpr int kLevels = 4;
  for (int i = 0; i < kLevels; ++i) {
    const NodeId fresh = net.add_input("p" + std::to_string(i));
    x = net.add_gate(NodeKind::kXor, x, fresh);
    net.set_keep(x);
  }
  net.connect_dff(q, x);
  const LutNetwork mapped = map_network(net);
  EXPECT_EQ(mapped.lut_count(), static_cast<size_t>(kLevels));
  const TimingModel model;
  const StaResult sta = run_sta(net, mapped, model);
  const double expect = model.clk_to_q_ns +
                        kLevels * (model.net_delay_ns + model.lut_delay_ns) +
                        model.net_delay_ns + model.setup_ns;
  EXPECT_NEAR(sta.critical_delay_ns, expect, 1e-9);
  EXPECT_EQ(sta.critical.start, "q");
  EXPECT_EQ(sta.critical.end, "q");
}

TEST(Sta, ProtectedDesignIsSlowerAndFeedbackCritical) {
  auto plain = netlist::build_snow3g_design();
  auto prot = netlist::build_protected_snow3g_design();
  const StaResult a = run_sta(plain.net, map_network(plain.net));
  const StaResult b = run_sta(prot.net, map_network(prot.net));
  EXPECT_GT(b.critical_delay_ns, a.critical_delay_ns);
  // Section VII-A: in the protected design the path into s15 becomes
  // critical.
  EXPECT_NE(b.critical.end.find("s15"), std::string::npos);
}

TEST(Sta, ReportsUpToTenSlowestPaths) {
  auto design = netlist::build_snow3g_design();
  const StaResult sta = run_sta(design.net, map_network(design.net));
  EXPECT_LE(sta.slowest.size(), 10u);
  ASSERT_FALSE(sta.slowest.empty());
  for (size_t i = 1; i < sta.slowest.size(); ++i) {
    EXPECT_GE(sta.slowest[i - 1].delay_ns, sta.slowest[i].delay_ns);
  }
}

}  // namespace
}  // namespace sbm::mapper
