// Probe-controller acceptance tests (DESIGN.md §4j): the adaptive
// sequential test must hold its configured wrong-accept bound on synthetic
// noisy read streams, never misdeclare a sound-but-noisy board dead, and —
// threaded through the full pipeline — reproduce the static controller's
// logical attack (same key, same oracle_runs, same phase ledger) while
// spending strictly fewer physical runs.  Every assertion here is
// deterministic: controllers are a pure function of the absorbed read
// sequence, and the e2e runs pin the default mild noise stream.
#include <gtest/gtest.h>

#include <vector>

#include "attack/pipeline.h"
#include "campaign/campaign.h"
#include "campaign/checkpoint.h"
#include "common/json.h"
#include "common/rng.h"
#include "faultsim/faulty_oracle.h"
#include "faultsim/noise.h"
#include "fpga/system.h"
#include "runtime/probe_cache.h"
#include "runtime/probe_controller.h"

namespace sbm {
namespace {

using runtime::AdaptiveConfig;
using runtime::ControllerKind;
using runtime::ProbeController;
using runtime::ProbeError;
using runtime::ProbeOutcome;
using runtime::RetryStats;

constexpr snow3g::Iv kHostIv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};

std::vector<u32> value(u32 tag) { return {tag, 0xc0ffee00u}; }

/// Drives a fresh one-slot session to settlement with a scripted read
/// sequence and returns the outcome.
ProbeOutcome settle(ProbeController& ctl, const std::vector<ProbeOutcome>& reads) {
  RetryStats stats;
  ctl.begin(1);
  for (const ProbeOutcome& r : reads) {
    EXPECT_FALSE(ctl.settled(0)) << "settled before the script ran out";
    EXPECT_GE(ctl.reads_wanted(0), 1u);
    ctl.absorb(0, r, stats);
  }
  EXPECT_TRUE(ctl.settled(0)) << "script exhausted without settling";
  EXPECT_EQ(ctl.reads_wanted(0), 0u);
  return ctl.take(0);
}

/// A near-clean config: the prior rests on so much weight that the UCB sits
/// at the point estimate and the depth floor governs.
AdaptiveConfig clean_config() {
  AdaptiveConfig cfg;
  cfg.prior_corrupt = 0.01;
  cfg.prior_weight = 1e6;
  return cfg;
}

TEST(AdaptiveController, CleanBoardSettlesAtTheDepthFloor) {
  auto ctl = runtime::make_adaptive_controller(clean_config());
  const ProbeOutcome out = settle(*ctl, {value(7), value(7)});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, value(7));
}

TEST(AdaptiveController, NoisyPriorDemandsDeeperAgreement) {
  AdaptiveConfig cfg;
  cfg.prior_corrupt = 0.55;
  cfg.prior_weight = 1e6;  // pin the estimate: this test is about the depth
  auto ctl = runtime::make_adaptive_controller(cfg);
  // At p=0.55 two agreeing reads leave wrong odds ~1.8e-3 > the 1e-3 bound
  // — the target is 3, so two identical reads must not settle.
  const ProbeOutcome out = settle(*ctl, {value(9), value(9), value(9)});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, value(9));
}

TEST(AdaptiveController, DisagreementNeverSettlesBelowTheFloor) {
  auto ctl = runtime::make_adaptive_controller(clean_config());
  const ProbeOutcome out = settle(*ctl, {value(1), value(2), value(2)});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, value(2)) << "the first value to reach the target wins";
}

TEST(AdaptiveController, EagerBundleDemandsExactlyTheRemainingDepth) {
  AdaptiveConfig cfg;
  cfg.prior_corrupt = 0.55;  // target depth 3 (see above)
  cfg.prior_weight = 1e6;
  auto ctl = runtime::make_adaptive_controller(cfg);
  RetryStats stats;
  ctl->begin(1);
  EXPECT_EQ(ctl->reads_wanted(0), 3u) << "fresh slot demands the full depth";
  ctl->absorb(0, value(4), stats);
  EXPECT_EQ(ctl->reads_wanted(0), 2u) << "one vote in, two to go";
  ctl->absorb(0, ProbeOutcome(ProbeError::kTimeout), stats);
  EXPECT_EQ(ctl->reads_wanted(0), 1u) << "after an error, probe the board alone";
  EXPECT_TRUE(ctl->retrying(0));
}

TEST(AdaptiveController, PersistentRejectionIsTheGenuineAnswer) {
  AdaptiveConfig cfg = clean_config();
  auto ctl = runtime::make_adaptive_controller(cfg);
  const std::vector<ProbeOutcome> rejects(cfg.max_attempts,
                                          ProbeOutcome(ProbeError::kRejected));
  const ProbeOutcome out = settle(*ctl, rejects);
  EXPECT_EQ(out.error(), ProbeError::kRejected);
}

TEST(AdaptiveController, SoundButNoisyBoardIsNeverDeclaredDead) {
  // Transient errors keep arriving, but never max_attempts in a row: every
  // value read resets the error budget, so the slot must settle on a value.
  AdaptiveConfig cfg = clean_config();
  auto ctl = runtime::make_adaptive_controller(cfg);
  std::vector<ProbeOutcome> reads;
  for (unsigned burst = 0; burst < 4; ++burst) {
    for (unsigned e = 0; e + 1 < cfg.max_attempts; ++e) {
      reads.emplace_back(burst % 2 == 0 ? ProbeError::kTimeout : ProbeError::kCorrupt);
    }
    reads.push_back(value(burst == 3 ? 42 : burst));  // disagreeing values
  }
  reads.push_back(value(42));
  const ProbeOutcome out = settle(*ctl, reads);
  ASSERT_TRUE(out.ok()) << "a board that keeps answering is alive";
  EXPECT_EQ(*out, value(42));
}

TEST(AdaptiveController, ExhaustedErrorBudgetSettlesDead) {
  AdaptiveConfig cfg = clean_config();
  auto ctl = runtime::make_adaptive_controller(cfg);
  std::vector<ProbeOutcome> reads;
  reads.push_back(value(1));  // board seen alive once
  for (unsigned e = 0; e < cfg.max_attempts; ++e) {
    reads.emplace_back(ProbeError::kTimeout);
  }
  const ProbeOutcome out = settle(*ctl, reads);
  EXPECT_EQ(out.error(), ProbeError::kDead);
}

TEST(StaticController, MatchesTheRetryPolicyVoteAndDemandsSingleReads) {
  auto ctl = runtime::make_static_controller(runtime::RetryPolicy::voting(3));
  RetryStats stats;
  ctl->begin(1);
  EXPECT_EQ(ctl->reads_wanted(0), 1u) << "the reference controller never bundles";
  ctl->absorb(0, value(5), stats);
  ctl->absorb(0, value(5), stats);
  EXPECT_FALSE(ctl->settled(0)) << "3-vote needs three identical reads";
  EXPECT_EQ(ctl->reads_wanted(0), 1u);
  ctl->absorb(0, value(5), stats);
  ASSERT_TRUE(ctl->settled(0));
  EXPECT_EQ(*ctl->take(0), value(5));
}

// ---------------------------------------------------------------------------
// Wrong-accept bound (randomized property)

/// Simulates probes against a synthetic noisy board: each read is corrupted
/// with probability `p`, and a corrupted read lands on one of `collisions`
/// equally likely wrong values — so two corrupted reads agree with
/// probability 1/collisions, matching the config's collision_odds exactly.
/// Returns {wrong accepts, total reads} over `probes` settled probes.
std::pair<size_t, size_t> run_synthetic(ProbeController& ctl, double p, u32 collisions,
                                        size_t probes, u64 seed) {
  Rng rng(seed);
  RetryStats stats;
  size_t wrong = 0;
  size_t reads = 0;
  for (size_t i = 0; i < probes; ++i) {
    const std::vector<u32> truth = value(static_cast<u32>(i));
    ctl.begin(1);
    while (!ctl.settled(0)) {
      ++reads;
      const bool corrupt =
          static_cast<double>(rng.next_u32()) / 4294967296.0 < p;
      if (corrupt) {
        std::vector<u32> bad = truth;
        const u32 bit = rng.next_u32() % collisions;  // collisions <= 64
        bad[bit / 32] ^= u32{1} << (bit % 32);
        ctl.absorb(0, ProbeOutcome(std::move(bad)), stats);
      } else {
        ctl.absorb(0, ProbeOutcome(truth), stats);
      }
    }
    const ProbeOutcome out = ctl.take(0);
    if (!out.ok() || *out != truth) ++wrong;
  }
  return {wrong, reads};
}

TEST(AdaptiveController, WrongAcceptRateStaysUnderTheConfiguredBound) {
  constexpr size_t kProbes = 30000;
  constexpr double kP = 0.1;
  constexpr u32 kCollisions = 64;
  AdaptiveConfig cfg;
  cfg.collision_odds = 1.0 / kCollisions;
  cfg.prior_corrupt = kP;
  cfg.prior_weight = 1e6;  // pin the estimate at the true rate
  auto ctl = runtime::make_adaptive_controller(cfg);
  const auto [wrong, reads] = run_synthetic(*ctl, kP, kCollisions, kProbes, 0x5eed01);
  // At p=0.1 with 1/64 collisions the stopping depth is 2, so acceptance is
  // genuinely cheap...
  const double mean_reads = static_cast<double>(reads) / kProbes;
  EXPECT_LT(mean_reads, 3.0) << "depth-2 stopping never engaged";
  // ...and the realized wrong-accept rate (~5 expected here: p^2/64 per
  // probe) must honor the bound; 1.5x slack over the bound covers the
  // binomial spread of a fixed seed.
  EXPECT_GT(wrong, 0u) << "parameters too benign to exercise the bound";
  EXPECT_LE(static_cast<double>(wrong), 1.5 * cfg.accept_error * kProbes)
      << wrong << " wrong accepts in " << kProbes << " probes";
}

TEST(AdaptiveController, TighterBoundBuysDeeperAgreementAndFewerWrongAccepts) {
  constexpr size_t kProbes = 30000;
  constexpr double kP = 0.1;
  constexpr u32 kCollisions = 64;
  AdaptiveConfig cfg;
  cfg.accept_error = 1e-6;
  cfg.collision_odds = 1.0 / kCollisions;
  cfg.prior_corrupt = kP;
  cfg.prior_weight = 1e6;
  auto ctl = runtime::make_adaptive_controller(cfg);
  const auto [wrong, reads] = run_synthetic(*ctl, kP, kCollisions, kProbes, 0x5eed01);
  EXPECT_EQ(wrong, 0u) << "1e-6 bound leaves ~0.007 expected wrong accepts";
  EXPECT_GT(static_cast<double>(reads) / kProbes, 3.0) << "the tighter bound must cost depth";
}

TEST(AdaptiveController, OnlineEstimateConvergesWithoutAPrior) {
  // Default config: uninformative 0.5 prior on light weight.  On a mildly
  // noisy synthetic board the estimator must learn its way down to the
  // cheap 2-read stopping depth after a conservative warmup — mean reads
  // well under the 3+ a pinned-high estimate would keep demanding — while
  // keeping the bound.
  constexpr size_t kProbes = 20000;
  constexpr double kP = 0.1;
  AdaptiveConfig cfg;
  cfg.collision_odds = 1.0 / 64;
  auto ctl = runtime::make_adaptive_controller(cfg);
  const auto [wrong, reads] = run_synthetic(*ctl, kP, 64, kProbes, 0x5eed02);
  EXPECT_LT(static_cast<double>(reads) / kProbes, 3.0);
  EXPECT_LE(static_cast<double>(wrong), 1.5 * cfg.accept_error * kProbes);
}

// ---------------------------------------------------------------------------
// Full-pipeline differential and determinism

const fpga::System& shared_system() {
  static const fpga::System sys = fpga::build_system();
  return sys;
}

attack::AttackResult run_noisy_attack(ControllerKind kind) {
  const fpga::System& sys = shared_system();
  const faultsim::NoiseProfile mild = faultsim::NoiseProfile::mild();
  attack::DeviceOracle device(sys, kHostIv, nullptr, 64);
  faultsim::FaultyOracle oracle(device, mild);
  runtime::ProbeCache cache;
  attack::PipelineConfig cfg;
  cfg.iv = kHostIv;
  cfg.cache = &cache;
  cfg.retry = runtime::RetryPolicy::voting(3);
  cfg.controller = kind;
  if (kind == ControllerKind::kAdaptive) {
    cfg.adaptive = faultsim::adaptive_config_for(mild, cfg.words);
  }
  attack::Attack attack(oracle, sys.golden.bytes, cfg);
  return attack.execute();
}

TEST(AdaptivePipeline, DifferentialAgainstStaticOnTheSameNoisyBoard) {
  const attack::AttackResult stat = run_noisy_attack(ControllerKind::kStatic);
  const attack::AttackResult adap = run_noisy_attack(ControllerKind::kAdaptive);
  ASSERT_TRUE(stat.success);
  ASSERT_TRUE(adap.success);
  // The paper metric and the whole logical ledger are controller-invariant.
  EXPECT_EQ(adap.secrets.key, stat.secrets.key);
  EXPECT_EQ(adap.faulty_keystream, stat.faulty_keystream);
  EXPECT_EQ(adap.oracle_runs, stat.oracle_runs);
  EXPECT_EQ(adap.probe_calls, stat.probe_calls);
  EXPECT_EQ(adap.cache_hits, stat.cache_hits);
  EXPECT_EQ(adap.phase_runs, stat.phase_runs);
  // The physical ledger is where the controllers differ — and both must
  // balance exactly.
  EXPECT_EQ(stat.physical_runs, stat.oracle_runs + stat.retry_runs + stat.vote_runs);
  EXPECT_EQ(adap.physical_runs, adap.oracle_runs + adap.retry_runs + adap.vote_runs);
  EXPECT_LT(adap.physical_runs, stat.physical_runs);
}

TEST(AdaptivePipeline, ReplayOfTheSameNoiseStreamIsBitIdentical) {
  const attack::AttackResult a = run_noisy_attack(ControllerKind::kAdaptive);
  const attack::AttackResult b = run_noisy_attack(ControllerKind::kAdaptive);
  EXPECT_EQ(a.secrets.key, b.secrets.key);
  EXPECT_EQ(a.faulty_keystream, b.faulty_keystream);
  EXPECT_EQ(a.oracle_runs, b.oracle_runs);
  EXPECT_EQ(a.physical_runs, b.physical_runs);
  EXPECT_EQ(a.retry_runs, b.retry_runs);
  EXPECT_EQ(a.vote_runs, b.vote_runs);
  EXPECT_EQ(a.corruption_detections, b.corruption_detections);
  EXPECT_EQ(a.phase_runs, b.phase_runs);
}

TEST(AdaptiveCampaign, FingerprintIsThreadCountInvariant) {
  campaign::CampaignOptions opt;
  opt.trials = 2;
  opt.seed = 0xfeedc0de;
  opt.noise = faultsim::NoiseProfile::mild();
  opt.controller = ControllerKind::kAdaptive;
  opt.threads = 1;
  const campaign::CampaignReport serial = campaign::run_campaign(opt);
  opt.threads = 8;
  const campaign::CampaignReport parallel = campaign::run_campaign(opt);
  ASSERT_TRUE(serial.all_expected());
  EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());
  ASSERT_EQ(serial.trials.size(), parallel.trials.size());
  for (size_t i = 0; i < serial.trials.size(); ++i) {
    // Physical accounting is not part of the fingerprint, but each trial's
    // noise stream is seeded per trial, so it replays exactly too.
    EXPECT_EQ(serial.trials[i].physical_runs, parallel.trials[i].physical_runs) << i;
    EXPECT_EQ(serial.trials[i].oracle_runs, parallel.trials[i].oracle_runs) << i;
  }
}

// ---------------------------------------------------------------------------
// Configuration plumbing

TEST(ControllerConfig, KindNamesRoundTripAndRejectUnknowns) {
  EXPECT_STREQ(runtime::controller_kind_name(ControllerKind::kStatic), "static");
  EXPECT_STREQ(runtime::controller_kind_name(ControllerKind::kAdaptive), "adaptive");
  EXPECT_EQ(runtime::parse_controller_kind("static"), ControllerKind::kStatic);
  EXPECT_EQ(runtime::parse_controller_kind("adaptive"), ControllerKind::kAdaptive);
  EXPECT_FALSE(runtime::parse_controller_kind("turbo").has_value());
  EXPECT_FALSE(runtime::parse_controller_kind("").has_value());
}

TEST(ControllerConfig, CampaignOptionsRoundTripThroughCheckpointJson) {
  campaign::CampaignOptions opt;
  opt.controller = ControllerKind::kAdaptive;
  JsonWriter w;
  campaign::write_options(w, opt);
  const auto doc = parse_json(w.str());
  ASSERT_TRUE(doc.has_value());
  const auto parsed = campaign::options_from_json(*doc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->controller, ControllerKind::kAdaptive);
  // The controller kind is part of the resume signature: splicing static
  // trials into an adaptive campaign would mix physical ledgers.
  campaign::CampaignOptions other = opt;
  other.controller = ControllerKind::kStatic;
  EXPECT_NE(campaign::options_signature(opt), campaign::options_signature(other));
}

TEST(ControllerConfig, UnknownControllerInOptionsJsonIsRejected) {
  const auto doc = parse_json(R"({"trials":2,"controller":"frobnicate"})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(campaign::options_from_json(*doc).has_value())
      << "the service maps this nullopt to a 400 spec error";
}

TEST(ControllerConfig, AdaptiveConfigForSizesTheReadBudgetToTheNoise) {
  // Mild noise (~40% corrupt reads at 16 words) stays near the default
  // budget...
  const AdaptiveConfig mild =
      faultsim::adaptive_config_for(faultsim::NoiseProfile::mild(), 16);
  EXPECT_GE(mild.max_reads, AdaptiveConfig{}.max_reads);
  EXPECT_LE(mild.max_reads, 32u);
  EXPECT_NEAR(mild.prior_corrupt, 0.40, 0.02);
  // ...while doubled flip rates (~64% corrupt) must grow it: 24 reads hold
  // three clean agreeing captures too rarely, and an exhausted budget reads
  // as a lost board.
  const AdaptiveConfig doubled =
      faultsim::adaptive_config_for(faultsim::NoiseProfile::mild().scaled(2.0), 16);
  EXPECT_GT(doubled.max_reads, mild.max_reads);
  EXPECT_LE(doubled.max_reads, 128u);
}

}  // namespace
}  // namespace sbm
