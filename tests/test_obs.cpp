// Observability-layer tests (DESIGN.md §4g): the mode switch gates every
// write path, counters sum exactly under a concurrent pool, snapshots and
// traces serialize to parseable JSON, and — the load-bearing property — a
// full attack produces bit-identical results with the layer on or off while
// the registry/tracer mirror the attack's own accounting.
#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "attack/pipeline.h"
#include "common/json.h"
#include "fpga/system.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "runtime/probe_cache.h"
#include "runtime/thread_pool.h"

namespace sbm {
namespace {

/// Saves and restores the process-wide obs mode around a test body.
class ModeGuard {
 public:
  ModeGuard() : saved_(obs::mode()) {}
  ~ModeGuard() { obs::set_mode(saved_); }

  ModeGuard(const ModeGuard&) = delete;
  ModeGuard& operator=(const ModeGuard&) = delete;

 private:
  obs::Mode saved_;
};

TEST(ObsMode, BitsGateMetricsAndTracingIndependently) {
  ModeGuard guard;

  obs::set_mode(obs::Mode::kOff);
  EXPECT_FALSE(obs::metrics_enabled());
  EXPECT_FALSE(obs::trace_enabled());

  obs::set_mode(obs::Mode::kMetrics);
  EXPECT_TRUE(obs::metrics_enabled());
  EXPECT_FALSE(obs::trace_enabled());

  obs::set_mode(obs::Mode::kTrace);
  EXPECT_FALSE(obs::metrics_enabled());
  EXPECT_TRUE(obs::trace_enabled());

  obs::set_mode(obs::Mode::kAll);
  EXPECT_TRUE(obs::metrics_enabled());
  EXPECT_TRUE(obs::trace_enabled());
}

TEST(Metrics, DisabledWritesAreDropped) {
  ModeGuard guard;
  obs::set_mode(obs::Mode::kOff);

  auto& reg = obs::MetricsRegistry::global();
  obs::Counter& c = reg.counter("test_obs.off_counter");
  obs::Gauge& g = reg.gauge("test_obs.off_gauge");
  obs::Histogram& h = reg.histogram("test_obs.off_hist");
  c.reset();
  g.reset();
  h.reset();

  c.add(7);
  g.set(42);
  h.observe(1000);

  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(Metrics, ConcurrentCounterAddsSumExactly) {
  ModeGuard guard;
  obs::set_mode(obs::Mode::kMetrics);

  obs::Counter& c = obs::MetricsRegistry::global().counter("test_obs.concurrent");
  c.reset();

  constexpr size_t kTasks = 32;
  constexpr u64 kAddsPerTask = 10000;
  runtime::ThreadPool pool(8);
  std::vector<std::function<void()>> tasks;
  for (size_t t = 0; t < kTasks; ++t) {
    tasks.emplace_back([&c] {
      for (u64 i = 0; i < kAddsPerTask; ++i) c.add(1);
    });
  }
  pool.run_batch(std::move(tasks));

  EXPECT_EQ(c.value(), kTasks * kAddsPerTask);
}

TEST(Metrics, HistogramBucketsByBitWidth) {
  ModeGuard guard;
  obs::set_mode(obs::Mode::kMetrics);

  obs::Histogram& h = obs::MetricsRegistry::global().histogram("test_obs.hist");
  h.reset();
  for (const u64 v : {u64{0}, u64{1}, u64{2}, u64{3}, u64{8}, u64{1023}}) h.observe(v);

  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 8 + 1023);
  EXPECT_EQ(h.bucket(0), 1u);   // 0
  EXPECT_EQ(h.bucket(1), 1u);   // 1
  EXPECT_EQ(h.bucket(2), 2u);   // 2, 3
  EXPECT_EQ(h.bucket(4), 1u);   // 8
  EXPECT_EQ(h.bucket(10), 1u);  // 1023
}

TEST(Metrics, SnapshotSerializesToParseableJson) {
  ModeGuard guard;
  obs::set_mode(obs::Mode::kMetrics);

  auto& reg = obs::MetricsRegistry::global();
  reg.counter("test_obs.snap_counter").reset();
  reg.counter("test_obs.snap_counter").add(11);
  reg.gauge("test_obs.snap_gauge").set(5);
  reg.histogram("test_obs.snap_hist").observe(16);

  const std::string json = reg.snapshot().to_json();
  const auto doc = parse_json(json);
  ASSERT_TRUE(doc.has_value()) << json;
  ASSERT_TRUE(doc->is_object());

  const JsonValue* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* snap = counters->find("test_obs.snap_counter");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->as_u64(), 11u);

  const JsonValue* gauges = doc->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->find("test_obs.snap_gauge")->as_u64(), 5u);
}

TEST(Trace, SpansAndInstantsRecordAndSerialize) {
  ModeGuard guard;
  obs::set_mode(obs::Mode::kTrace);

  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  {
    obs::Span outer("test", "outer", "k0", 1);
    obs::Span inner("test", "inner");
    inner.arg("k1", 2);
  }
  tracer.instant("test", "tick", {{"n", 3}});

  EXPECT_EQ(tracer.event_count(), 3u);

  const std::string json = tracer.to_chrome_json();
  const auto doc = parse_json(json);
  ASSERT_TRUE(doc.has_value()) << json;
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->items.size(), 3u);

  std::set<std::string> names;
  for (const JsonValue& e : events->items) {
    ASSERT_TRUE(e.is_object());
    names.insert(e.find("name")->as_string());
    EXPECT_NE(e.find("ph"), nullptr);
    EXPECT_NE(e.find("ts"), nullptr);
    EXPECT_NE(e.find("pid"), nullptr);
    EXPECT_NE(e.find("tid"), nullptr);
  }
  EXPECT_EQ(names, (std::set<std::string>{"outer", "inner", "tick"}));
}

TEST(Trace, DisabledSpansRecordNothing) {
  ModeGuard guard;
  obs::set_mode(obs::Mode::kOff);

  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  {
    obs::Span span("test", "ghost", "k", 1);
    span.arg("k2", 2);
  }
  tracer.instant("test", "ghost_instant");

  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST(Obs, FullAttackIsIdenticalWithObservabilityOn) {
  ModeGuard guard;
  const fpga::System sys = fpga::build_system();
  constexpr snow3g::Iv kIv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};

  auto run_attack = [&] {
    attack::DeviceOracle oracle(sys, kIv, nullptr, 64);
    runtime::ProbeCache cache;
    attack::PipelineConfig cfg;
    cfg.iv = kIv;
    cfg.cache = &cache;
    attack::Attack attack(oracle, sys.golden.bytes, cfg);
    return attack.execute();
  };

  obs::set_mode(obs::Mode::kOff);
  const attack::AttackResult off = run_attack();
  ASSERT_TRUE(off.success);

  obs::set_mode(obs::Mode::kAll);
  obs::MetricsRegistry::global().reset();
  obs::Tracer::global().clear();
  const attack::AttackResult on = run_attack();
  obs::set_mode(obs::Mode::kOff);

  // The mode must never leak into the logical result.
  ASSERT_TRUE(on.success);
  EXPECT_EQ(on.oracle_runs, off.oracle_runs);
  EXPECT_EQ(on.cache_hits, off.cache_hits);
  EXPECT_EQ(on.probe_calls, off.probe_calls);
  EXPECT_EQ(on.phase_runs, off.phase_runs);
  EXPECT_EQ(on.faulty_keystream, off.faulty_keystream);
  EXPECT_EQ(on.secrets.key, off.secrets.key);

  // The registry mirrors the attack's own accounting exactly.
  auto& reg = obs::MetricsRegistry::global();
  EXPECT_EQ(reg.counter("attack.executions").value(), 1u);
  EXPECT_EQ(reg.counter("attack.successes").value(), 1u);
  EXPECT_EQ(reg.counter("attack.oracle_runs").value(), on.oracle_runs);
  EXPECT_EQ(reg.counter("attack.cache_hits").value(), on.cache_hits);
  EXPECT_EQ(reg.counter("attack.probe_calls").value(), on.probe_calls);

  // The trace carries the execute span plus one span per pipeline phase.
  std::set<std::string> span_names;
  for (const obs::TraceEvent& e : obs::Tracer::global().events()) {
    if (e.ph == 'X' && std::string(e.cat) == "attack") span_names.insert(e.name);
  }
  EXPECT_TRUE(span_names.count("execute")) << "missing attack execute span";
  EXPECT_TRUE(span_names.count("setup")) << "missing attack setup span";
  for (const auto& [phase, runs] : on.phase_runs) {
    EXPECT_TRUE(span_names.count(phase)) << "missing span for phase " << phase;
  }
}

}  // namespace
}  // namespace sbm
