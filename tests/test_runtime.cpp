// Runtime subsystem tests: thread-pool lifecycle, nested batches, exception
// propagation, deterministic ordered reduction, and probe-cache accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "common/json.h"
#include "common/rng.h"
#include "runtime/parallel.h"
#include "runtime/probe_cache.h"
#include "runtime/thread_pool.h"

namespace sbm::runtime {
namespace {

TEST(ThreadPool, LifecycleAtVariousSizes) {
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.concurrency(), threads);
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 32; ++i) tasks.push_back([&ran] { ++ran; });
    pool.run_batch(std::move(tasks));
    EXPECT_EQ(ran.load(), 32);
  }
  // Destruction with no batches ever submitted must not hang.
  ThreadPool idle(4);
}

TEST(ThreadPool, EmptyBatchAndReuse) {
  ThreadPool pool(4);
  pool.run_batch({});
  std::atomic<int> ran{0};
  for (int round = 0; round < 10; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 8; ++i) tasks.push_back([&ran] { ++ran; });
    pool.run_batch(std::move(tasks));
  }
  EXPECT_EQ(ran.load(), 80);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.concurrency(), 1u);
}

TEST(ThreadPool, NestedBatchesDoNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_ran{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 8; ++i) {
    outer.push_back([&pool, &inner_ran] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 8; ++j) inner.push_back([&inner_ran] { ++inner_ran; });
      pool.run_batch(std::move(inner));
    });
  }
  pool.run_batch(std::move(outer));
  EXPECT_EQ(inner_ran.load(), 64);
}

TEST(ThreadPool, ExceptionPropagates) {
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    std::atomic<int> ran{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 16; ++i) {
      tasks.push_back([&ran, i] {
        ++ran;
        if (i == 5) throw std::runtime_error("task 5 failed");
      });
    }
    try {
      pool.run_batch(std::move(tasks));
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 5 failed");
    }
    // Every task still ran (the batch is not torn down mid-flight)...
    EXPECT_EQ(ran.load(), 16);
    // ...and the pool stays usable.
    std::atomic<int> again{0};
    pool.run_batch({[&again] { ++again; }});
    EXPECT_EQ(again.load(), 1);
  }
}

TEST(ThreadPool, LowestIndexExceptionWins) {
  // With several throwing tasks the surfaced error must not depend on
  // scheduling: the lowest task index is rethrown.
  ThreadPool pool(8);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 32; ++i) {
      tasks.push_back([i] {
        if (i % 7 == 3) throw std::runtime_error("fail@" + std::to_string(i));
      });
    }
    try {
      pool.run_batch(std::move(tasks));
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fail@3");
    }
  }
}

TEST(Parallel, MapPreservesIndexOrder) {
  ThreadPool pool(8);
  const auto out = parallel_map(&pool, 1000, [](size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Parallel, MapMatchesSerialForAnyThreadCount) {
  auto work = [](size_t i) {
    Rng rng(i);
    return rng.next_u64();
  };
  const auto serial = parallel_map(nullptr, 313, work);
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(parallel_map(&pool, 313, work), serial) << threads << " threads";
  }
}

TEST(Parallel, ForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> counts(512);
  parallel_for(&pool, counts.size(), [&](size_t i) { ++counts[i]; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Parallel, OrderedReductionIsDeterministic) {
  // A deliberately non-commutative fold: the result depends on the order
  // results are folded in, so this only passes if reduction is ordered.
  auto fold = [](u64 acc, u64 v) { return acc * 31 + v; };
  auto work = [](size_t i) { return u64{i} ^ 0xabcdu; };
  u64 serial = 7;
  for (size_t i = 0; i < 200; ++i) serial = fold(serial, work(i));
  for (const unsigned threads : {1u, 3u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(parallel_map_reduce(&pool, 200, u64{7}, work, fold), serial);
  }
}

TEST(ProbeCache, HitMissAccounting) {
  ProbeCache cache;
  const std::vector<u8> bytes_a = {1, 2, 3, 4, 5};
  const std::vector<u8> bytes_b = {1, 2, 3, 4, 6};
  const ProbeKey a = make_probe_key(bytes_a, 16);
  const ProbeKey b = make_probe_key(bytes_b, 16);
  EXPECT_FALSE(a == b);

  EXPECT_FALSE(cache.lookup(a).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  cache.store(a, ProbeResult{std::vector<u32>{0xdead, 0xbeef}});
  const auto hit = cache.lookup(a);
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->has_value());
  EXPECT_EQ((**hit)[1], 0xbeefu);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.entries(), 1u);

  // Rejected probes (nullopt) are cacheable outcomes, distinct from misses.
  cache.store(b, std::nullopt);
  const auto rejected = cache.lookup(b);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_FALSE(rejected->has_value());
  EXPECT_EQ(cache.hits(), 2u);

  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(ProbeCache, KeyDependsOnWordsAndContent) {
  const std::vector<u8> bytes = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 11, 12};
  EXPECT_FALSE(make_probe_key(bytes, 16) == make_probe_key(bytes, 17));
  std::vector<u8> flipped = bytes;
  flipped[11] ^= 0x80;  // tail byte beyond the last full 8-byte chunk
  EXPECT_FALSE(make_probe_key(bytes, 16) == make_probe_key(flipped, 16));
  EXPECT_TRUE(make_probe_key(bytes, 16) == make_probe_key(bytes, 16));
}

TEST(ProbeCache, ShardedConcurrentAccess) {
  ProbeCache cache(8);
  ThreadPool pool(8);
  // Many threads hammering overlapping keys: every lookup is either a hit
  // or a miss, totals must balance, and stored values stay intact.
  parallel_for(&pool, 64, [&](size_t i) {
    Rng rng(i % 16);  // 16 distinct probe contents, contended 4 ways each
    std::vector<u8> bytes(64);
    for (auto& b : bytes) b = static_cast<u8>(rng.next_u32());
    const ProbeKey key = make_probe_key(bytes, 16);
    if (!cache.lookup(key).has_value()) {
      cache.store(key, ProbeResult{std::vector<u32>{static_cast<u32>(i % 16)}});
    }
    const auto back = cache.lookup(key);
    if (back.has_value() && back->has_value()) {
      EXPECT_EQ((**back)[0], i % 16);
    }
  });
  EXPECT_EQ(cache.entries(), 16u);
  EXPECT_EQ(cache.hits() + cache.misses(), 128u);  // 2 lookups per task
}

TEST(Json, WellFormedOutput) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "line1\nline\"2\"");
  w.field("count", u64{42});
  w.field("ratio", 0.5);
  w.field("ok", true);
  w.key("list").begin_array().value(u64{1}).value(u64{2}).value(u64{3}).end_array();
  w.key("nested").begin_object().field("deep", false).end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"line1\\nline\\\"2\\\"\",\"count\":42,\"ratio\":0.5,\"ok\":true,"
            "\"list\":[1,2,3],\"nested\":{\"deep\":false}}");
}

}  // namespace
}  // namespace sbm::runtime
