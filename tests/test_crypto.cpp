// Known-answer and property tests for the crypto substrate (CRC-32,
// SHA-256, HMAC-SHA-256, AES-256-CTR).
#include <gtest/gtest.h>

#include <string_view>

#include "common/hex.h"
#include "crypto/aes256.h"
#include "crypto/crc32.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace sbm::crypto {
namespace {

std::vector<u8> bytes_of(std::string_view s) {
  return std::vector<u8>(s.begin(), s.end());
}

TEST(Crc32, CheckString) {
  // The universal CRC check value for "123456789".
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xCBF43926u);
}

TEST(Crc32, CastagnoliCheckString) {
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xE3069283u);
}

TEST(Crc32, EmptyInput) {
  EXPECT_EQ(crc32({}), 0u);
  EXPECT_EQ(crc32c({}), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const auto data = bytes_of("the quick brown fox jumps over the lazy dog");
  Crc32Engine e(0xEDB88320u);
  for (u8 b : data) e.update_byte(b);
  EXPECT_EQ(e.value(), crc32(data));
}

TEST(Crc32, SensitiveToSingleBitFlip) {
  auto data = bytes_of("bitstream");
  const u32 before = crc32c(data);
  data[3] ^= 0x10;
  EXPECT_NE(crc32c(data), before);
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_bytes(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_bytes(sha256(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_bytes(sha256(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalSplitsMatchOneShot) {
  const auto data = bytes_of("incremental hashing across arbitrary split points!");
  const Sha256Digest expect = sha256(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    Sha256 h;
    h.update(std::span<const u8>(data.data(), split));
    h.update(std::span<const u8>(data.data() + split, data.size() - split));
    EXPECT_EQ(h.finish(), expect) << "split=" << split;
  }
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::vector<u8> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_bytes(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// RFC 4231 test cases for HMAC-SHA-256.
TEST(Hmac, Rfc4231Case1) {
  const std::vector<u8> key(20, 0x0b);
  EXPECT_EQ(hex_bytes(hmac_sha256(key, bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hex_bytes(hmac_sha256(bytes_of("Jefe"), bytes_of("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const std::vector<u8> key(20, 0xaa);
  const std::vector<u8> data(50, 0xdd);
  EXPECT_EQ(hex_bytes(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231LongKey) {
  const std::vector<u8> key(131, 0xaa);
  EXPECT_EQ(hex_bytes(hmac_sha256(
                key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DigestEqualConstantTimeSemantics) {
  Sha256Digest a{}, b{};
  EXPECT_TRUE(digest_equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(Aes256, SboxKnownValues) {
  const auto& sbox = aes_sbox();
  EXPECT_EQ(sbox[0x00], 0x63);
  EXPECT_EQ(sbox[0x01], 0x7c);
  EXPECT_EQ(sbox[0x53], 0xed);
  EXPECT_EQ(sbox[0xff], 0x16);
  // The S-box is a permutation of 0..255.
  std::array<bool, 256> seen{};
  for (u8 v : sbox) seen[v] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Aes256, Fips197Vector) {
  // FIPS-197 Appendix C.3: AES-256 with key 00..1f.
  Aes256Key key{};
  for (size_t i = 0; i < 32; ++i) key[i] = static_cast<u8>(i);
  AesBlock block;
  const auto pt = parse_hex_bytes("00112233445566778899aabbccddeeff");
  std::copy(pt.begin(), pt.end(), block.begin());
  Aes256(key).encrypt_block(block);
  EXPECT_EQ(hex_bytes(block), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes256, CtrIsInvolution) {
  Aes256Key key{};
  key[0] = 0x42;
  AesBlock iv{};
  iv[15] = 1;
  std::vector<u8> data(1000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 7);
  const std::vector<u8> original = data;
  aes256_ctr_xor(key, iv, data);
  EXPECT_NE(data, original);
  aes256_ctr_xor(key, iv, data);
  EXPECT_EQ(data, original);
}

TEST(Aes256, CtrKeystreamDependsOnIv) {
  Aes256Key key{};
  std::vector<u8> a(64, 0), b(64, 0);
  AesBlock iv1{}, iv2{};
  iv2[0] = 1;
  aes256_ctr_xor(key, iv1, a);
  aes256_ctr_xor(key, iv2, b);
  EXPECT_NE(a, b);
}

TEST(Aes256, CtrCounterAdvancesAcrossBlocks) {
  // Two encryptions of a 32-byte buffer must produce distinct 16-byte
  // keystream blocks (counter increments).
  Aes256Key key{};
  AesBlock iv{};
  std::vector<u8> data(32, 0);
  aes256_ctr_xor(key, iv, data);
  EXPECT_NE(std::vector<u8>(data.begin(), data.begin() + 16),
            std::vector<u8>(data.begin() + 16, data.end()));
}

}  // namespace
}  // namespace sbm::crypto
