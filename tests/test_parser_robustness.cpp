// Robustness of the configuration parser and the device model against
// corrupted bitstreams: random mutations must never crash, and the device
// must either configure cleanly or reject with a diagnostic — exactly the
// property a fielded configuration engine needs when an attacker is
// flipping bytes.
#include <gtest/gtest.h>

#include "bitstream/parser.h"
#include "bitstream/patcher.h"
#include "common/rng.h"
#include "fpga/system.h"

namespace sbm::bitstream {
namespace {

const fpga::System& system_instance() {
  static const fpga::System sys = fpga::build_system();
  return sys;
}

class MutatedBitstream : public ::testing::TestWithParam<u64> {};

TEST_P(MutatedBitstream, ParserNeverCrashesOnByteFlips) {
  const fpga::System& sys = system_instance();
  Rng rng(GetParam());
  auto bytes = sys.golden.bytes;
  const size_t flips = 1 + rng.next_below(16);
  for (size_t i = 0; i < flips; ++i) {
    bytes[rng.next_below(bytes.size())] ^= static_cast<u8>(1 + rng.next_below(255));
  }
  const ParseResult res = parse_bitstream(bytes);
  if (!res.ok) {
    EXPECT_FALSE(res.error.empty());
  }
}

TEST_P(MutatedBitstream, DeviceRejectsOrRunsDeterministically) {
  const fpga::System& sys = system_instance();
  Rng rng(GetParam() + 500);
  auto bytes = sys.golden.bytes;
  // Flip bytes only inside frame data so the packet structure stays valid;
  // the CRC must catch every such corruption unless disabled.
  const size_t fdri = sys.golden.layout.fdri_byte_offset;
  const size_t span = sys.golden.layout.frame_count * kFrameBytes;
  bytes[fdri + rng.next_below(span)] ^= static_cast<u8>(1 + rng.next_below(255));

  fpga::Device dev = sys.make_device();
  EXPECT_FALSE(dev.configure(bytes));  // CRC catches it

  disable_crc(bytes);
  fpga::Device dev2 = sys.make_device();
  ASSERT_TRUE(dev2.configure(bytes)) << dev2.error();
  // Faulted devices are still deterministic oracles.
  const snow3g::Iv iv = {1, 2, 3, 4};
  EXPECT_EQ(dev2.keystream(iv, 6), dev2.keystream(iv, 6));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MutatedBitstream,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110));

TEST(ParserRobustness, RandomGarbageBuffers) {
  Rng rng(0xdead);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<u8> garbage(4 * (1 + rng.next_below(512)));
    for (auto& b : garbage) b = static_cast<u8>(rng.next_u64());
    const ParseResult res = parse_bitstream(garbage);  // must not crash
    if (!res.ok) {
      EXPECT_FALSE(res.error.empty());
    }
  }
}

TEST(ParserRobustness, TruncatedGoldenPrefixes) {
  const fpga::System& sys = system_instance();
  const auto& bytes = sys.golden.bytes;
  for (size_t cut = 0; cut < bytes.size(); cut += 97) {
    const std::span<const u8> prefix(bytes.data(), cut & ~size_t{3});
    const ParseResult res = parse_bitstream(prefix);  // must not crash
    if (res.ok) {
      // A prefix that parses cleanly must at least have reached the frames.
      EXPECT_LE(res.frame_data.size(), bytes.size());
    }
  }
}

TEST(ParserRobustness, ExhaustiveHeaderTruncationSweep) {
  // Every prefix length through the entire header region (sync word,
  // command packets, up to and a little past the start of frame data),
  // including unaligned lengths: neither the parser nor the configuration
  // engine may crash, and a rejection must carry a diagnostic.
  const fpga::System& sys = system_instance();
  const auto& bytes = sys.golden.bytes;
  const size_t header_end =
      std::min(bytes.size(), sys.golden.layout.fdri_byte_offset + 64);
  for (size_t cut = 0; cut <= header_end; ++cut) {
    const std::span<const u8> prefix(bytes.data(), cut);
    const ParseResult res = parse_bitstream(prefix);
    if (!res.ok) {
      EXPECT_FALSE(res.error.empty()) << "cut " << cut;
    }
    fpga::Device dev = sys.make_device();
    if (!dev.configure(prefix)) {
      EXPECT_FALSE(dev.error().empty()) << "cut " << cut;
    }
  }
}

TEST(ParserRobustness, TenThousandSeededByteFlips) {
  // 10k single-byte corruptions anywhere in the image — header, packet
  // stream and frame data alike.  parse_bitstream and Device::configure
  // must never crash; whether they accept or reject, the outcome must be a
  // clean diagnosis, not undefined behavior.
  const fpga::System& sys = system_instance();
  std::vector<u8> bytes = sys.golden.bytes;
  Rng rng(0xf1195eed);
  for (int trial = 0; trial < 10000; ++trial) {
    const size_t pos = rng.next_below(bytes.size());
    const u8 mask = static_cast<u8>(1 + rng.next_below(255));
    bytes[pos] ^= mask;
    const ParseResult res = parse_bitstream(bytes);
    if (!res.ok) {
      ASSERT_FALSE(res.error.empty()) << "trial " << trial << " pos " << pos;
    }
    fpga::Device dev = sys.make_device();
    if (!dev.configure(bytes)) {
      ASSERT_FALSE(dev.error().empty()) << "trial " << trial << " pos " << pos;
    }
    bytes[pos] ^= mask;  // restore the golden image for the next trial
  }
  EXPECT_EQ(bytes, sys.golden.bytes);
}

TEST(ParserRobustness, RecomputeCrcIsIdempotent) {
  const fpga::System& sys = system_instance();
  auto a = sys.golden.bytes;
  EXPECT_TRUE(recompute_crc(a));
  EXPECT_EQ(a, sys.golden.bytes);  // already correct
  a[sys.golden.layout.fdri_byte_offset] ^= 1;
  EXPECT_TRUE(recompute_crc(a));
  auto b = a;
  EXPECT_TRUE(recompute_crc(b));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sbm::bitstream
