// BiFI baseline tests (untargeted rule-based fault injection, [23]).
#include <gtest/gtest.h>

#include "attack/bifi.h"
#include "fpga/system.h"
#include "snow3g/snow3g.h"

namespace sbm::attack {
namespace {

TEST(BifiRules, RuleSemantics) {
  const u64 init = 0x0123456789abcdefull;
  EXPECT_EQ(apply_bifi_rule(init, BifiRule::kClearLut), 0u);
  EXPECT_EQ(apply_bifi_rule(init, BifiRule::kSetLut), ~u64{0});
  EXPECT_EQ(apply_bifi_rule(init, BifiRule::kInvertLut), ~init);
  EXPECT_EQ(apply_bifi_rule(init, BifiRule::kSetHighHalf), init | 0xffffffff00000000ull);
  EXPECT_EQ(apply_bifi_rule(init, BifiRule::kClearHighHalf), init & 0xffffffffull);
  EXPECT_EQ(all_bifi_rules().size(), 5u);
}

TEST(BifiExploitability, ConstantKeystreamIsExploitable) {
  std::vector<u32> z(16, 0xdeadbeef);
  std::optional<snow3g::RecoveredSecrets> secrets;
  EXPECT_TRUE(keystream_exploitable(z, &secrets));
  EXPECT_FALSE(secrets.has_value());  // disabled output, but no key
}

TEST(BifiExploitability, LfsrStreamYieldsTheKey) {
  const snow3g::Key k = {0x2bd6459f, 0x82c5b300, 0x952c4910, 0x4881ff48};
  const snow3g::Iv iv = {0xea024714, 0xad5c4d84, 0xdf1f9b25, 0x1c0bf45f};
  snow3g::Snow3g faulted(k, iv, snow3g::FaultConfig::full_attack());
  const std::vector<u32> z = faulted.keystream(16);
  std::optional<snow3g::RecoveredSecrets> secrets;
  ASSERT_TRUE(keystream_exploitable(z, &secrets));
  ASSERT_TRUE(secrets.has_value());
  EXPECT_EQ(secrets->key, k);
}

TEST(BifiExploitability, NormalKeystreamIsNot) {
  snow3g::Snow3g clean({1, 2, 3, 4}, {5, 6, 7, 8});
  EXPECT_FALSE(keystream_exploitable(clean.keystream(16), nullptr));
  std::vector<u32> short_z(8, 0);
  EXPECT_FALSE(keystream_exploitable(short_z, nullptr));
}

TEST(BifiCampaign, BoundedCampaignDoesNotRecoverTheKey) {
  // The headline baseline result: single-LUT rule faults cannot linearize
  // the 32-bit FSM word, so BiFI never reaches a key-recovering keystream.
  const fpga::System sys = fpga::build_system();
  DeviceOracle oracle(sys, {1, 2, 3, 4});
  BifiOptions opt;
  opt.max_configurations = 800;
  const BifiResult res = run_bifi(oracle, sys.golden.bytes, opt);
  EXPECT_FALSE(res.secrets.has_value());
  EXPECT_LE(res.configurations, opt.max_configurations);
  EXPECT_GT(res.configurations, 100u);
  // Plenty of faults disturb the keystream — they are just not exploitable.
  EXPECT_GT(res.interesting, 0u);
}

TEST(BifiCampaign, RespectsConfigurationBudget) {
  const fpga::System sys = fpga::build_system();
  DeviceOracle oracle(sys, {1, 2, 3, 4});
  BifiOptions opt;
  opt.max_configurations = 50;
  const BifiResult res = run_bifi(oracle, sys.golden.bytes, opt);
  EXPECT_LE(res.configurations, 50u);
  EXPECT_LE(oracle.runs(), 51u);
}

}  // namespace
}  // namespace sbm::attack
